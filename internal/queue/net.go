package queue

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snowboard/internal/obs"
)

// TCP transport metrics: connections accepted / currently served, per-op
// counters, malformed-request and oversized-frame counts, and client
// reconnects.
var (
	mNetConns    = obs.C(obs.MQueueNetConns)
	mNetInFlight = obs.G(obs.MQueueNetInFl)
	mNetBadReq   = obs.C(obs.MQueueNetBadReq)
	mNetPop      = obs.C(obs.MQueueNetPop)
	mNetPush     = obs.C(obs.MQueueNetPush)
	mNetReport   = obs.C(obs.MQueueNetReport)
	mNetLease    = obs.C(obs.MQueueNetLease)
	mNetAck      = obs.C(obs.MQueueNetAck)
	mNetNack     = obs.C(obs.MQueueNetNack)
	mNetExtend   = obs.C(obs.MQueueNetExtend)
	mNetUnknown  = obs.C(obs.MQueueNetUnknown)
	mNetReconn   = obs.C(obs.MQueueNetReconn)
	mNetBigFrame = obs.C(obs.MQueueNetBigFrm)
)

// TCP transport: a Server fronts a Queue with a line-delimited JSON
// protocol; Clients (workers on other machines) lease jobs and report
// results. Protocol version 2 adds leased at-least-once delivery:
//
//	{"op":"lease","v":2}              -> {"ok":true,"job":{...},"lease":7,"attempt":1,"ttl_ms":30000}
//	                                     | {"ok":false,"err":"queue: empty"|"queue: closed"}
//	{"op":"ack","lease":7,"v":2}      -> {"ok":true} | {"ok":false,"err":"queue: unknown lease"}
//	{"op":"nack","lease":7,"reason":"...","v":2} -> {"ok":true}
//	{"op":"extend","lease":7,"ms":30000,"v":2}   -> {"ok":true,"ttl_ms":30000}
//	{"op":"pop"}                      -> v1 at-most-once dequeue (legacy)
//	{"op":"push","job":{...}}         -> {"ok":true}
//	{"op":"report","result":{...}}    -> {"ok":true}
//
// Requests with v greater than the server's version are rejected, so a
// future client degrades loudly instead of mis-parsing. Frames (requests
// and responses) are capped at MaxFrame bytes; oversized frames are
// answered with {"ok":false,"err":"frame too large"} and discarded, the
// same hostile-input clamp the artifact decoders apply.

// ProtoVersion is the wire protocol version this build speaks. Within v2,
// jobs may carry an optional "trace" field stitching them to the
// originating campaign; older v2 peers simply ignore it (unknown JSON
// fields are dropped on decode), so no version bump is needed.
const ProtoVersion = 2

// Transport limits.
const (
	// DefaultMaxFrame caps one line-delimited frame (a job inlines two
	// programs at most, well under 1 MiB).
	DefaultMaxFrame = 1 << 20
	// DefaultIdleTimeout is how long the server lets a connection sit
	// silent before dropping it. Workers poll far more often than this;
	// only stuck or hostile peers hit it.
	DefaultIdleTimeout = 5 * time.Minute
)

type wireReq struct {
	V      int             `json:"v,omitempty"`
	Op     string          `json:"op"`
	Job    json.RawMessage `json:"job,omitempty"`
	Result *JobResult      `json:"result,omitempty"`
	Lease  uint64          `json:"lease,omitempty"`
	Ms     int64           `json:"ms,omitempty"`     // extend: requested lease TTL
	Reason string          `json:"reason,omitempty"` // nack: failure description
	// Queue addresses one named queue on a multi-queue server (see
	// ServeRegistry); empty targets the server's default queue. Like Job's
	// "trace", this stays within v2: older peers never set it and servers
	// without a registry reject it loudly.
	Queue string `json:"queue,omitempty"`
}

type wireResp struct {
	V       int             `json:"v,omitempty"`
	OK      bool            `json:"ok"`
	Err     string          `json:"err,omitempty"`
	Job     json.RawMessage `json:"job,omitempty"`
	Lease   uint64          `json:"lease,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	TTLMs   int64           `json:"ttl_ms,omitempty"` // lease/extend: time until the deadline
}

// errFrameTooLarge reports a frame over the size cap.
var errFrameTooLarge = errors.New("frame too large")

// readFrame reads one newline-terminated frame of at most max bytes.
// Oversized frames are discarded through to the newline — O(1) memory, the
// connection stays in sync — and reported as errFrameTooLarge.
func readFrame(r *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	tooBig := false
	for {
		chunk, err := r.ReadSlice('\n')
		if !tooBig {
			buf = append(buf, chunk...)
			if len(buf) > max {
				tooBig = true
				buf = nil
			}
		}
		switch {
		case err == nil:
			if tooBig {
				return nil, errFrameTooLarge
			}
			return buf, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		default:
			if tooBig {
				return nil, errFrameTooLarge
			}
			return buf, err
		}
	}
}

// ServerOptions tune the transport limits of a Server.
type ServerOptions struct {
	MaxFrame    int           // request frame cap in bytes (default DefaultMaxFrame)
	IdleTimeout time.Duration // per-connection read deadline (default DefaultIdleTimeout; <0 disables)
}

// Server exposes a Queue — or a whole Registry of named queues — over one
// TCP listener. Requests carrying a "queue" name are routed to that
// registry queue; requests without one go to the default queue Q.
type Server struct {
	Q *Queue
	// Reg, when set, serves named queues alongside (or instead of) Q: a
	// request's "queue" field selects the registry queue, and unknown
	// names are answered with ErrUnknownQueue.
	Reg *Registry
	// MaxFrame and IdleTimeout may be set before serving traffic; zero
	// values use the defaults.
	MaxFrame    int
	IdleTimeout time.Duration

	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") with default
// transport limits; the bound address is available via Addr.
func Serve(q *Queue, addr string) (*Server, error) {
	return ServeOpts(q, addr, ServerOptions{})
}

// ServeOpts starts listening on addr with explicit transport limits.
func ServeOpts(q *Queue, addr string, o ServerOptions) (*Server, error) {
	return serve(q, nil, addr, o)
}

// ServeRegistry starts one listener serving every named queue in reg —
// the control plane's multi-tenant transport. Requests must carry a
// "queue" name (there is no default queue).
func ServeRegistry(reg *Registry, addr string, o ServerOptions) (*Server, error) {
	return serve(nil, reg, addr, o)
}

func serve(q *Queue, reg *Registry, addr string, o ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("queue: listen: %w", err)
	}
	s := &Server{Q: q, Reg: reg, MaxFrame: o.MaxFrame, IdleTimeout: o.IdleTimeout, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// queueFor resolves the queue a request addresses: the named registry
// queue when a name is given, the default queue otherwise.
func (s *Server) queueFor(name string) (*Queue, error) {
	if name == "" {
		if s.Q == nil {
			return nil, fmt.Errorf("%w: no default queue on this server (name one of %v)", ErrUnknownQueue, s.names())
		}
		return s.Q, nil
	}
	if s.Reg == nil {
		return nil, fmt.Errorf("%w %q: server has no queue registry", ErrUnknownQueue, name)
	}
	q := s.Reg.Get(name)
	if q == nil {
		return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknownQueue, name, s.names())
	}
	return q, nil
}

func (s *Server) names() []string {
	if s.Reg == nil {
		return nil
	}
	return s.Reg.Names()
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) maxFrame() int {
	if s.MaxFrame > 0 {
		return s.MaxFrame
	}
	return DefaultMaxFrame
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout != 0 {
		return s.IdleTimeout
	}
	return DefaultIdleTimeout
}

// track registers a live connection; it reports false (and the caller must
// close the conn) when the server is already shutting down.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	mNetConns.Inc()
	mNetInFlight.Add(1)
	defer mNetInFlight.Add(-1)
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		if t := s.idleTimeout(); t > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t))
		}
		line, readErr := readFrame(r, s.maxFrame())
		if errors.Is(readErr, errFrameTooLarge) {
			mNetBigFrame.Inc()
			mNetBadReq.Inc()
			_ = enc.Encode(wireResp{V: ProtoVersion, OK: false, Err: errFrameTooLarge.Error()})
			continue
		}
		if len(line) == 0 {
			// Connection drained (EOF), idle past the deadline, or failed
			// with nothing pending.
			return
		}
		var req wireReq
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed requests get an explicit error response on the
			// still-open connection rather than a silent drop.
			mNetBadReq.Inc()
			_ = enc.Encode(wireResp{V: ProtoVersion, OK: false, Err: fmt.Sprintf("bad request: %v", err)})
			if readErr != nil {
				return
			}
			continue
		}
		if req.V > ProtoVersion {
			mNetBadReq.Inc()
			_ = enc.Encode(wireResp{V: ProtoVersion, OK: false,
				Err: fmt.Sprintf("unsupported protocol version %d (server speaks <= %d)", req.V, ProtoVersion)})
			if readErr != nil {
				return
			}
			continue
		}
		s.serveOp(enc, req)
		if readErr != nil {
			return
		}
	}
}

// serveOp dispatches one decoded request and writes exactly one response.
func (s *Server) serveOp(enc *json.Encoder, req wireReq) {
	fail := func(err error) { _ = enc.Encode(wireResp{V: ProtoVersion, OK: false, Err: err.Error()}) }
	q, err := s.queueFor(req.Queue)
	if err != nil {
		mNetBadReq.Inc()
		fail(err)
		return
	}
	switch req.Op {
	case "lease":
		mNetLease.Inc()
		ls, err := q.TryLease()
		if err != nil {
			fail(err)
			return
		}
		raw, err := EncodeJob(ls.Job)
		if err != nil {
			// Undeliverable on this transport; hand it back so it
			// dead-letters instead of leaking as a leased job.
			_ = q.Nack(ls.ID, "encode: "+err.Error())
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true, Job: raw, Lease: ls.ID,
			Attempt: ls.Attempt, TTLMs: time.Until(ls.Deadline).Milliseconds()})
	case "ack":
		mNetAck.Inc()
		if err := q.Ack(req.Lease); err != nil {
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true})
	case "nack":
		mNetNack.Inc()
		if err := q.Nack(req.Lease, req.Reason); err != nil {
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true})
	case "extend":
		mNetExtend.Inc()
		deadline, err := q.Extend(req.Lease, time.Duration(req.Ms)*time.Millisecond)
		if err != nil {
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true, Lease: req.Lease,
			TTLMs: time.Until(deadline).Milliseconds()})
	case "pop":
		mNetPop.Inc()
		job, err := q.TryPop()
		if err != nil {
			fail(err)
			return
		}
		raw, err := EncodeJob(job)
		if err != nil {
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true, Job: raw})
	case "push":
		mNetPush.Inc()
		job, err := DecodeJob(req.Job)
		if err != nil {
			fail(err)
			return
		}
		if err := q.Push(job); err != nil {
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true})
	case "report":
		mNetReport.Inc()
		if req.Result == nil {
			fail(errors.New("missing result"))
			return
		}
		if err := q.Report(*req.Result); err != nil {
			fail(err)
			return
		}
		_ = enc.Encode(wireResp{V: ProtoVersion, OK: true})
	default:
		mNetUnknown.Inc()
		fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// Close stops accepting, severs every live connection, and waits for
// in-flight handlers. Idle clients sitting in a blocked read no longer wedge
// shutdown: their connections are closed out from under them, so Close
// returns promptly.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// DialOptions configure a Client's reconnect and transport behaviour.
type DialOptions struct {
	// MaxRetries bounds reconnect-and-retry attempts per round-trip after
	// the first (default 5). Every queue op is safe to retry under
	// at-least-once semantics: a lost lease expires and redelivers, and a
	// doubled report is deduplicated by job ID.
	MaxRetries int
	// BaseDelay is the first backoff step (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s), with ±50% deterministic
	// jitter drawn from Seed.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed fixes the jitter stream (0 picks a process-unique seed).
	Seed int64
	// MaxFrame caps response frames (default DefaultMaxFrame).
	MaxFrame int
	// Dial overrides the transport (tests inject FlakyDialer here); nil
	// uses plain TCP.
	Dial func(addr string) (net.Conn, error)
	// Queue binds every request to one named queue on a multi-queue
	// server (see ServeRegistry); empty targets the server's default
	// queue.
	Queue string
}

func (o DialOptions) withDefaults() DialOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = clientSeq.Add(1)*0x9e3779b9 + 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

var clientSeq atomic.Int64

// Client is a worker-side connection to a queue server. It reconnects
// automatically: a round-trip that hits an I/O error redials with
// exponential backoff plus jitter and retries, up to MaxRetries. All queue
// ops are idempotent-enough under at-least-once delivery for this to be
// safe (see DialOptions.MaxRetries).
type Client struct {
	addr string
	opts DialOptions

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	rng  *rand.Rand
}

// Dial connects to a queue server with default reconnect behaviour.
func Dial(addr string) (*Client, error) { return DialOpts(addr, DialOptions{}) }

// DialOpts connects to a queue server with explicit reconnect and
// transport options. The initial connection is established eagerly so
// configuration errors surface immediately.
func DialOpts(addr string, o DialOptions) (*Client, error) {
	o = o.withDefaults()
	c := &Client{addr: addr, opts: o, rng: rand.New(rand.NewSource(o.Seed))}
	conn, err := o.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("queue: dial: %w", err)
	}
	c.conn, c.r = conn, bufio.NewReader(conn)
	return c, nil
}

// dropConnLocked severs the current connection (if any).
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn, c.r = nil, nil
	}
}

// backoffLocked sleeps the exponential-backoff-with-jitter delay for the
// given retry attempt (1-based).
func (c *Client) backoffLocked(attempt int) {
	d := c.opts.BaseDelay << uint(attempt-1)
	if d > c.opts.MaxDelay || d <= 0 {
		d = c.opts.MaxDelay
	}
	// ±50% jitter: uniform in [d/2, d].
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// roundTrip sends one request and reads one response, reconnecting and
// retrying on I/O errors.
func (c *Client) roundTrip(req wireReq) (wireResp, error) {
	req.V = ProtoVersion
	req.Queue = c.opts.Queue
	payload, err := json.Marshal(req)
	if err != nil {
		return wireResp{}, err
	}
	payload = append(payload, '\n')

	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.dropConnLocked()
			c.backoffLocked(attempt)
		}
		if c.conn == nil {
			conn, err := c.opts.Dial(c.addr)
			if err != nil {
				lastErr = err
				continue
			}
			mNetReconn.Inc()
			c.conn, c.r = conn, bufio.NewReader(conn)
		}
		resp, err := c.onceLocked(payload)
		if err != nil {
			lastErr = err
			c.dropConnLocked()
			continue
		}
		return resp, nil
	}
	return wireResp{}, fmt.Errorf("queue: round-trip failed after %d attempts: %w", c.opts.MaxRetries+1, lastErr)
}

// onceLocked performs a single send/receive on the live connection.
func (c *Client) onceLocked(payload []byte) (wireResp, error) {
	if _, err := c.conn.Write(payload); err != nil {
		return wireResp{}, err
	}
	line, err := readFrame(c.r, c.opts.MaxFrame)
	if err != nil {
		return wireResp{}, err
	}
	var resp wireResp
	if err := json.Unmarshal(line, &resp); err != nil {
		return wireResp{}, err
	}
	return resp, nil
}

// respError maps a server error string back to the package sentinel errors
// so errors.Is works across the wire.
func respError(resp wireResp) error {
	switch resp.Err {
	case ErrEmpty.Error():
		return ErrEmpty
	case ErrClosed.Error():
		return ErrClosed
	case ErrUnknownLease.Error():
		return ErrUnknownLease
	}
	// ErrUnknownQueue travels with the offending name and the server's
	// known queues appended, so match on the prefix.
	if strings.HasPrefix(resp.Err, ErrUnknownQueue.Error()) {
		return fmt.Errorf("%w: %s", ErrUnknownQueue, strings.TrimPrefix(resp.Err, ErrUnknownQueue.Error()+" "))
	}
	return fmt.Errorf("queue: %s", resp.Err)
}

// Lease fetches the next job under a lease; ErrEmpty when none are pending,
// ErrClosed when the queue has shut down.
func (c *Client) Lease() (Lease, error) {
	resp, err := c.roundTrip(wireReq{Op: "lease"})
	if err != nil {
		return Lease{}, err
	}
	if !resp.OK {
		return Lease{}, respError(resp)
	}
	job, err := DecodeJob(resp.Job)
	if err != nil {
		// Hand the lease straight back rather than sitting on it until the
		// reaper expires it: the job redelivers (or dead-letters, with this
		// reason) immediately.
		_ = c.Nack(resp.Lease, "decode: "+err.Error())
		return Lease{}, err
	}
	return Lease{
		Job:      job,
		ID:       resp.Lease,
		Attempt:  resp.Attempt,
		Deadline: time.Now().Add(time.Duration(resp.TTLMs) * time.Millisecond),
	}, nil
}

// Ack settles a lease. ErrUnknownLease after a successful Report is benign:
// the lease expired (or a retried ack already landed) and the coordinator
// deduplicates any redelivered result.
func (c *Client) Ack(id uint64) error {
	resp, err := c.roundTrip(wireReq{Op: "ack", Lease: id})
	if err != nil {
		return err
	}
	if !resp.OK {
		return respError(resp)
	}
	return nil
}

// Nack hands a lease back for redelivery with a reason.
func (c *Client) Nack(id uint64, reason string) error {
	resp, err := c.roundTrip(wireReq{Op: "nack", Lease: id, Reason: reason})
	if err != nil {
		return err
	}
	if !resp.OK {
		return respError(resp)
	}
	return nil
}

// Extend pushes a lease deadline out by d (the server's lease timeout when
// d <= 0) and returns the new deadline.
func (c *Client) Extend(id uint64, d time.Duration) (time.Time, error) {
	resp, err := c.roundTrip(wireReq{Op: "extend", Lease: id, Ms: d.Milliseconds()})
	if err != nil {
		return time.Time{}, err
	}
	if !resp.OK {
		return time.Time{}, respError(resp)
	}
	return time.Now().Add(time.Duration(resp.TTLMs) * time.Millisecond), nil
}

// Pop fetches the next job with legacy at-most-once semantics; ErrEmpty
// when none are queued, ErrClosed when the queue has shut down. New workers
// use Lease/Ack.
func (c *Client) Pop() (Job, error) {
	resp, err := c.roundTrip(wireReq{Op: "pop"})
	if err != nil {
		return Job{}, err
	}
	if !resp.OK {
		return Job{}, respError(resp)
	}
	return DecodeJob(resp.Job)
}

// Push enqueues a job remotely.
func (c *Client) Push(j Job) error {
	raw, err := EncodeJob(j)
	if err != nil {
		return err
	}
	resp, err := c.roundTrip(wireReq{Op: "push", Job: raw})
	if err != nil {
		return err
	}
	if !resp.OK {
		return respError(resp)
	}
	return nil
}

// Report sends a result back.
func (c *Client) Report(r JobResult) error {
	resp, err := c.roundTrip(wireReq{Op: "report", Result: &r})
	if err != nil {
		return err
	}
	if !resp.OK {
		return respError(resp)
	}
	return nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.r = nil, nil
	return err
}
