package queue

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// settle polls until cond is true or the deadline passes.
func settle(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never settled")
}

func TestLeaseAck(t *testing.T) {
	q := NewWithOptions(Options{Name: "lease-ack"})
	defer q.Close()
	if err := q.Push(testJob(1)); err != nil {
		t.Fatal(err)
	}
	ls, err := q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	if ls.Job.ID != 1 || ls.Attempt != 1 || ls.ID == 0 {
		t.Fatalf("lease = %+v", ls)
	}
	if time.Until(ls.Deadline) <= 0 {
		t.Fatalf("lease deadline %v already passed", ls.Deadline)
	}
	// While leased, the queue looks empty but not settled.
	if _, err := q.TryLease(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("second lease: %v", err)
	}
	if st := q.Stats(); st.Pending != 0 || st.Leased != 1 || st.Done != 0 {
		t.Fatalf("stats while leased = %+v", st)
	}
	if err := q.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Leased != 0 || st.Done != 1 {
		t.Fatalf("stats after ack = %+v", st)
	}
	// Double ack is an unknown lease, not silent corruption.
	if err := q.Ack(ls.ID); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("double ack: %v", err)
	}
}

func TestNackRedeliversThenDeadLetters(t *testing.T) {
	q := NewWithOptions(Options{Name: "nack-dead", MaxAttempts: 3})
	defer q.Close()
	if err := q.Push(testJob(7)); err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		ls, err := q.TryLease()
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if ls.Attempt != attempt {
			t.Fatalf("attempt = %d, want %d", ls.Attempt, attempt)
		}
		if err := q.Nack(ls.ID, "worker exploded"); err != nil {
			t.Fatal(err)
		}
	}
	// Attempts exhausted: dead-lettered, not redelivered and not dropped.
	if _, err := q.TryLease(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("lease after dead-letter: %v", err)
	}
	dead := q.DeadLetters()
	if len(dead) != 1 || dead[0].Job.ID != 7 || dead[0].Attempts != 3 || dead[0].Reason != "worker exploded" {
		t.Fatalf("dead letters = %+v", dead)
	}
	if st := q.Stats(); st.DeadLettered != 1 || st.Redelivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeaseExpiryRedelivers(t *testing.T) {
	// A worker that leases a job and dies without acking must not lose it:
	// the reaper redelivers after the lease timeout.
	q := NewWithOptions(Options{Name: "expiry", LeaseTimeout: 30 * time.Millisecond, MaxAttempts: 5})
	defer q.Close()
	if err := q.Push(testJob(3)); err != nil {
		t.Fatal(err)
	}
	ls, err := q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": never ack. The job must come back with a bumped attempt.
	var re Lease
	settle(t, 2*time.Second, func() bool {
		var lerr error
		re, lerr = q.TryLease()
		return lerr == nil
	})
	if re.Job.ID != 3 || re.Attempt != 2 {
		t.Fatalf("redelivered lease = %+v", re)
	}
	// The stale lease cannot settle the redelivered job.
	if err := q.Ack(ls.ID); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("stale ack: %v", err)
	}
	if err := q.Ack(re.ID); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Done != 1 || st.Redelivered != 1 || st.Leased != 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExtendKeepsLeaseAlive(t *testing.T) {
	q := NewWithOptions(Options{Name: "extend", LeaseTimeout: 40 * time.Millisecond})
	defer q.Close()
	if err := q.Push(testJob(4)); err != nil {
		t.Fatal(err)
	}
	ls, err := q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	deadline, err := q.Extend(ls.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if time.Until(deadline) < 4*time.Second {
		t.Fatalf("extended deadline only %v away", time.Until(deadline))
	}
	// Sleep well past the original timeout: the extension must keep the
	// reaper away.
	time.Sleep(120 * time.Millisecond)
	if _, err := q.TryLease(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("job redelivered despite extension: %v", err)
	}
	if err := q.Ack(ls.ID); err != nil {
		t.Fatalf("ack after extension: %v", err)
	}
}

func TestBlockingLeaseWakesOnRedelivery(t *testing.T) {
	// A blocked Lease() must wake when the reaper requeues an expired
	// lease, not just on Push/Close.
	q := NewWithOptions(Options{Name: "wake", LeaseTimeout: 30 * time.Millisecond, MaxAttempts: 5})
	defer q.Close()
	if err := q.Push(testJob(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.TryLease(); err != nil {
		t.Fatal(err)
	}
	got := make(chan Lease, 1)
	go func() {
		ls, err := q.Lease()
		if err == nil {
			got <- ls
		}
		close(got)
	}()
	select {
	case ls, ok := <-got:
		if !ok || ls.Job.ID != 8 || ls.Attempt != 2 {
			t.Fatalf("blocked lease got %+v (ok=%v)", ls, ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Lease never woke on redelivery")
	}
}

func TestPopIsLeaseThenAck(t *testing.T) {
	// Legacy Pop keeps at-most-once semantics on top of the lease machinery.
	q := NewWithOptions(Options{Name: "pop-compat"})
	defer q.Close()
	if err := q.Push(testJob(2)); err != nil {
		t.Fatal(err)
	}
	j, err := q.TryPop()
	if err != nil || j.ID != 2 {
		t.Fatalf("pop: %v %v", j.ID, err)
	}
	if st := q.Stats(); st.Done != 1 || st.Leased != 0 {
		t.Fatalf("stats after pop = %+v", st)
	}
}

func TestReadFrameCap(t *testing.T) {
	read := func(input string, max int) ([]byte, error) {
		return readFrame(bufio.NewReaderSize(strings.NewReader(input), 16), max)
	}
	if got, err := read("hello\nworld\n", 64); err != nil || string(got) != "hello\n" {
		t.Fatalf("small frame = %q, %v", got, err)
	}
	// Oversized frame: error, and the reader resyncs to the next line.
	r := bufio.NewReaderSize(strings.NewReader(string(bytes.Repeat([]byte("x"), 100))+"\nnext\n"), 16)
	if _, err := readFrame(r, 32); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized frame err = %v", err)
	}
	if got, err := readFrame(r, 32); err != nil || string(got) != "next\n" {
		t.Fatalf("frame after oversize = %q, %v", got, err)
	}
	// Oversized with no newline before EOF still errors.
	if _, err := read(string(bytes.Repeat([]byte("y"), 100)), 32); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized at EOF err = %v", err)
	}
	// EOF mid-frame under the cap returns the partial frame with the error.
	if got, err := read("partial", 64); err == nil || string(got) != "partial" {
		t.Fatalf("partial frame = %q, %v", got, err)
	}
}

func TestTCPLeaseRoundtrip(t *testing.T) {
	q := NewWithOptions(Options{Name: "tcp-lease", LeaseTimeout: 5 * time.Second})
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Lease(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("lease on empty: %v", err)
	}
	if err := c.Push(testJob(11)); err != nil {
		t.Fatal(err)
	}
	ls, err := c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if ls.Job.ID != 11 || ls.Attempt != 1 || ls.ID == 0 {
		t.Fatalf("lease = %+v", ls)
	}
	if ttl := time.Until(ls.Deadline); ttl < 3*time.Second || ttl > 6*time.Second {
		t.Fatalf("lease ttl = %v, want ~5s", ttl)
	}
	deadline, err := c.Extend(ls.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ttl := time.Until(deadline); ttl < 8*time.Second {
		t.Fatalf("extended ttl = %v, want ~10s", ttl)
	}
	if err := c.Report(JobResult{JobID: 11, Trials: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Ack(ls.ID); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("double ack over TCP: %v", err)
	}

	// Nack path: redelivered with a bumped attempt.
	if err := c.Push(testJob(12)); err != nil {
		t.Fatal(err)
	}
	ls, err = c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Nack(ls.ID, "transient"); err != nil {
		t.Fatal(err)
	}
	ls, err = c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if ls.Job.ID != 12 || ls.Attempt != 2 {
		t.Fatalf("redelivered lease = %+v", ls)
	}
	if err := c.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
}
