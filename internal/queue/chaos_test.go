package queue_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"snowboard/internal/queue"
)

// TestChaosFleet runs a 3-worker fleet against a real TCP server through a
// seeded fault injector that randomly severs and delays connections. The
// at-least-once machinery must absorb every injected failure: no job may be
// lost, none may be double-counted after the by-job-ID fold, and with a
// generous retry budget nothing should dead-letter.
func TestChaosFleet(t *testing.T) {
	const (
		jobs     = 40
		nWorkers = 3
		seed     = 1234
	)
	q := queue.NewWithOptions(queue.Options{
		Name:         "chaos",
		LeaseTimeout: 150 * time.Millisecond,
		MaxAttempts:  50,
	})
	srv, err := queue.Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// By-reference jobs (a digest plus pair indices) keep the wire frames
	// tiny; the workers here never resolve them — they only exercise the
	// delivery machinery.
	digest := strings.Repeat("ab", 32)
	for i := 0; i < jobs; i++ {
		if err := q.Push(queue.Job{ID: i, Corpus: digest}); err != nil {
			t.Fatal(err)
		}
	}

	// Every worker dials through a flaky transport: ~3% of reads/writes
	// sever the connection, ~5% stall briefly. The seeds are fixed, so the
	// fault schedule is reproducible (modulo goroutine interleaving).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := queue.DialOpts(srv.Addr(), queue.DialOptions{
				MaxRetries: 8,
				BaseDelay:  time.Millisecond,
				MaxDelay:   20 * time.Millisecond,
				Seed:       int64(seed + id),
				Dial: queue.FlakyDialer(queue.FlakyOptions{
					Seed:      int64(seed * (id + 1)),
					FailProb:  0.03,
					DelayProb: 0.05,
					MaxDelay:  2 * time.Millisecond,
				}, nil),
			})
			if err != nil {
				t.Errorf("worker %d dial: %v", id, err)
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ls, err := c.Lease()
				switch {
				case errors.Is(err, queue.ErrEmpty):
					time.Sleep(5 * time.Millisecond)
					continue
				case errors.Is(err, queue.ErrClosed):
					return
				case err != nil:
					// Retry budget exhausted under injected faults; the next
					// round-trip redials from scratch.
					time.Sleep(5 * time.Millisecond)
					continue
				}
				res := queue.JobResult{JobID: ls.Job.ID, Trials: 1, Worker: "chaos"}
				if err := c.Report(res); err != nil {
					// The report never landed: hand the lease back rather
					// than lose the job.
					_ = c.Nack(ls.ID, "report failed")
					continue
				}
				if err := c.Ack(ls.ID); err != nil && !errors.Is(err, queue.ErrUnknownLease) &&
					!errors.Is(err, queue.ErrClosed) {
					t.Errorf("worker %d ack job %d: %v", id, ls.Job.ID, err)
				}
			}
		}(w)
	}

	// Wait for every job to settle (acked or dead-lettered), then release
	// the workers.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := q.Stats()
		if st.Pending == 0 && st.Leased == 0 {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("fleet never settled: stats = %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if dead := q.DeadLetters(); len(dead) != 0 {
		t.Fatalf("dead letters under chaos: %+v", dead)
	}
	// Fold reports exactly once per job: redelivery may produce duplicate
	// reports (they are identical), but after the fold every job must be
	// counted exactly once and none may be missing.
	results := q.Results()
	seen := make(map[int]int)
	for _, r := range results {
		seen[r.JobID]++
	}
	for i := 0; i < jobs; i++ {
		if seen[i] == 0 {
			t.Errorf("job %d lost: never reported", i)
		}
	}
	if len(seen) != jobs {
		t.Errorf("distinct jobs reported = %d, want %d", len(seen), jobs)
	}
	st := q.Stats()
	if st.Done != jobs {
		t.Errorf("acked jobs = %d, want %d", st.Done, jobs)
	}
	t.Logf("chaos fleet: %d reports for %d jobs, %d redeliveries, stats %+v",
		len(results), jobs, st.Redelivered, st)
}
