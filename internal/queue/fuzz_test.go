package queue

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// FuzzQueueWire throws arbitrary bytes at the TCP codec as a single
// line-delimited frame: the server must never panic, must answer exactly
// one response per frame, and must answer every malformed frame with
// {"ok":false,...} on the still-open connection.
func FuzzQueueWire(f *testing.F) {
	f.Add([]byte(`{"op":"pop"}`))
	f.Add([]byte(`{"op":"push","job":{"id":1}}`))
	f.Add([]byte(`{"op":"report","result":{"id":1}}`))
	f.Add([]byte(`{"op":"lease","v":2}`))
	f.Add([]byte(`{"op":"ack","lease":1,"v":2}`))
	f.Add([]byte(`{"op":"nack","lease":7,"reason":"crash","v":2}`))
	f.Add([]byte(`{"op":"extend","lease":7,"ms":500}`))
	f.Add([]byte(`{"op":"pop","v":99}`))
	f.Add([]byte(`{"op":"lease","lease":18446744073709551615}`))
	f.Add(bytes.Repeat([]byte(`{"op":"pop"} `), 64))
	f.Add(bytes.Repeat([]byte("a"), 600))
	f.Add([]byte(`{"op":`))
	f.Add([]byte(`null`))
	f.Add([]byte(`"pop"`))
	f.Add([]byte("\x00\xff garbage \x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// One frame: the protocol is line-delimited, so embedded newlines
		// would split the input into several requests.
		frame := bytes.ReplaceAll(data, []byte("\n"), []byte(" "))
		frame = bytes.ReplaceAll(frame, []byte("\r"), []byte(" "))

		// A deliberately small frame cap so the fuzzer exercises the
		// oversized-frame discard path, not just the JSON decoder.
		s := &Server{Q: New(), MaxFrame: 512}
		defer s.Q.Close()
		cli, srv := net.Pipe()
		done := make(chan struct{})
		go func() {
			s.handle(srv)
			close(done)
		}()
		_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := cli.Write(append(frame, '\n')); err != nil {
			t.Fatalf("write: %v", err)
		}
		line, err := bufio.NewReader(cli).ReadBytes('\n')
		if err != nil {
			t.Fatalf("no response to frame %q: %v", frame, err)
		}
		var resp wireResp
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("response to %q is not valid JSON: %q (%v)", frame, line, err)
		}
		var req wireReq
		if json.Unmarshal(append(frame, '\n'), &req) != nil && resp.OK {
			t.Fatalf("malformed frame %q answered with ok=true", frame)
		}
		if resp.OK && resp.Err != "" {
			t.Fatalf("contradictory response to %q: ok with err=%q", frame, resp.Err)
		}
		_ = cli.Close()
		<-done
	})
}
