package queue

import (
	"errors"
	"sync"
	"testing"
	"time"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
)

func testJob(id int) Job {
	prog := &corpus.Prog{Calls: []corpus.Call{
		{Nr: kernel.SysMountNr},
	}}
	return Job{
		ID:     id,
		Writer: prog,
		Reader: prog.Clone(),
		Hint: &pmc.PMC{
			Write: pmc.Key{Addr: 0x100, Size: 8, Val: 1},
			Read:  pmc.Key{Addr: 0x100, Size: 8, Val: 2},
		},
		Pair: pmc.Pair{Writer: 0, Reader: 1},
	}
}

func TestQueueFIFO(t *testing.T) {
	q := New()
	for i := 0; i < 3; i++ {
		if err := q.Push(testJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
	for i := 0; i < 3; i++ {
		j, err := q.Pop()
		if err != nil || j.ID != i {
			t.Fatalf("pop %d: %v %v", i, j.ID, err)
		}
	}
}

func TestTryPopEmpty(t *testing.T) {
	q := New()
	if _, err := q.TryPop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err: %v", err)
	}
	q.Close()
	if _, err := q.TryPop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err after close: %v", err)
	}
	if err := q.Push(testJob(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
}

func TestPopBlocksUntilPushOrClose(t *testing.T) {
	q := New()
	got := make(chan Job, 1)
	go func() {
		j, err := q.Pop()
		if err == nil {
			got <- j
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Push(testJob(7)); err != nil {
		t.Fatal(err)
	}
	select {
	case j, ok := <-got:
		if !ok || j.ID != 7 {
			t.Fatalf("blocked pop result: %v %v", j.ID, ok)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}

	// A pop blocked on an empty queue wakes on Close.
	done := make(chan error, 1)
	go func() {
		_, err := q.Pop()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke on close")
	}
}

func TestResultsDrain(t *testing.T) {
	q := New()
	_ = q.Report(JobResult{JobID: 1})
	_ = q.Report(JobResult{JobID: 2})
	rs := q.Results()
	if len(rs) != 2 {
		t.Fatalf("results: %d", len(rs))
	}
	if len(q.Results()) != 0 {
		t.Fatal("results not drained")
	}
}

func TestJobEncodeDecode(t *testing.T) {
	j := testJob(5)
	data, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 5 || got.Hint == nil || got.Hint.Read.Val != 2 {
		t.Fatalf("decoded: %+v", got)
	}
	if _, err := DecodeJob([]byte(`{"id":1}`)); err == nil {
		t.Fatal("job without programs decoded")
	}
	if _, err := DecodeJob([]byte(`{"id":1,"writer":{"calls":[{"nr":999}]},"reader":{"calls":[]}}`)); err == nil {
		t.Fatal("invalid program decoded")
	}
}

func TestTCPRoundtrip(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Pop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("pop on empty: %v", err)
	}
	if err := c.Push(testJob(9)); err != nil {
		t.Fatal(err)
	}
	j, err := c.Pop()
	if err != nil || j.ID != 9 {
		t.Fatalf("pop: %v %v", j.ID, err)
	}
	if err := c.Report(JobResult{JobID: 9, Trials: 3, Exercised: true, BugIDs: []int{12}}); err != nil {
		t.Fatal(err)
	}
	rs := q.Results()
	if len(rs) != 1 || rs[0].JobID != 9 || !rs[0].Exercised || rs[0].BugIDs[0] != 12 {
		t.Fatalf("results: %+v", rs)
	}
}

func TestTCPMultipleWorkers(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const jobs = 40
	for i := 0; i < jobs; i++ {
		if err := q.Push(testJob(i)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for {
				j, err := c.Pop()
				if errors.Is(err, ErrEmpty) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[j.ID] {
					t.Errorf("job %d delivered twice", j.ID)
				}
				seen[j.ID] = true
				mu.Unlock()
				_ = c.Report(JobResult{JobID: j.ID})
			}
		}()
	}
	wg.Wait()
	if len(seen) != jobs {
		t.Fatalf("delivered %d/%d jobs", len(seen), jobs)
	}
	if got := len(q.Results()); got != jobs {
		t.Fatalf("results %d/%d", got, jobs)
	}
}
