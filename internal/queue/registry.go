package queue

import (
	"errors"
	"sort"
	"sync"
)

// ErrUnknownQueue is returned by named-queue operations addressing a queue
// the registry has never opened. Names are opened explicitly (by the
// campaign control plane when a campaign is admitted), so a typo in a
// worker's -queue flag fails loudly instead of silently creating an empty
// queue nobody feeds.
var ErrUnknownQueue = errors.New("queue: unknown queue")

// Registry is a set of named queues sharing one delivery configuration,
// the multi-tenant backbone of the campaign control plane: each campaign
// gets its own named queue ("campaign.<id>"), all of them served over a
// single TCP listener (see ServeRegistry), with per-queue
// "queue.<name>.depth" gauges keeping every tenant's backlog separately
// observable.
type Registry struct {
	template Options

	mu     sync.Mutex
	queues map[string]*Queue
}

// NewRegistry returns an empty registry. template supplies the delivery
// options (lease timeout, max attempts) every opened queue inherits; its
// Name field is ignored — each queue is named by Open.
func NewRegistry(template Options) *Registry {
	return &Registry{template: template, queues: make(map[string]*Queue)}
}

// Open returns the named queue, creating it on first use with the
// registry's template options.
func (r *Registry) Open(name string) *Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok := r.queues[name]; ok {
		return q
	}
	o := r.template
	o.Name = name
	q := NewWithOptions(o)
	r.queues[name] = q
	return q
}

// Get returns the named queue, or nil if it was never opened.
func (r *Registry) Get(name string) *Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queues[name]
}

// Names returns the opened queue names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.queues))
	for name := range r.queues {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close closes every opened queue.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, q := range r.queues {
		q.Close()
	}
}
