package snowboard_test

// Reproduction of every row of the paper's Table 2: for each seeded issue,
// a pair of sequential tests is constructed, profiled from the boot
// snapshot, the PMC between the relevant write and read sites is
// identified, and Algorithm 2 explores interleavings with that PMC as the
// hint until the issue surfaces. Each test also asserts the issue's
// classification (kind, harmfulness) and that it is absent from the kernel
// version that does not carry it.

import (
	"sort"
	"strings"
	"testing"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/kernel"
)

// P assembles a program from calls.
func P(calls ...snowboard.Call) *snowboard.Prog { return &snowboard.Prog{Calls: calls} }

// C builds a call with constant arguments.
func C(nr int, args ...uint64) snowboard.Call {
	c := snowboard.Call{Nr: nr}
	for _, a := range args {
		c.Args = append(c.Args, snowboard.Const(a))
	}
	return c
}

// CR builds a call with mixed arguments.
func CR(nr int, args ...snowboard.Arg) snowboard.Call {
	return snowboard.Call{Nr: nr, Args: args}
}

func sock(domain, typ, proto uint64) snowboard.Call {
	return C(kernel.SysSocketNr, domain, typ, proto)
}

// hintSpec selects the PMC to use as the scheduling hint by write/read
// instruction-name prefixes (empty matches anything).
type hintSpec struct{ writePfx, readPfx string }

// table2Case describes one Table 2 reproduction.
type table2Case struct {
	id       int
	version  snowboard.Version
	writer   *snowboard.Prog
	reader   *snowboard.Prog
	hint     hintSpec
	wantKind []detect.IssueKind // acceptable manifestations
	trials   int
}

func findHint(t *testing.T, set *snowboard.PMCSet, spec hintSpec) *snowboard.PMC {
	t.Helper()
	var matches []snowboard.PMC
	for key := range set.Entries {
		if spec.writePfx != "" && !strings.HasPrefix(key.Write.Ins.Name(), spec.writePfx) {
			continue
		}
		if spec.readPfx != "" && !strings.HasPrefix(key.Read.Ins.Name(), spec.readPfx) {
			continue
		}
		matches = append(matches, key)
	}
	if len(matches) == 0 {
		t.Fatalf("no PMC matching write=%q read=%q identified", spec.writePfx, spec.readPfx)
	}
	// Map iteration is random; order deterministically, preferring
	// nullification channels (write value 0), the S-CH-NULL intuition.
	sort.Slice(matches, func(i, j int) bool {
		a, b := matches[i], matches[j]
		if (a.Write.Val == 0) != (b.Write.Val == 0) {
			return a.Write.Val == 0
		}
		if a.Write.Ins != b.Write.Ins {
			return a.Write.Ins < b.Write.Ins
		}
		if a.Write.Addr != b.Write.Addr {
			return a.Write.Addr < b.Write.Addr
		}
		if a.Read.Ins != b.Read.Ins {
			return a.Read.Ins < b.Read.Ins
		}
		if a.Read.Addr != b.Read.Addr {
			return a.Read.Addr < b.Read.Addr
		}
		if a.Write.Val != b.Write.Val {
			return a.Write.Val < b.Write.Val
		}
		return a.Read.Val < b.Read.Val
	})
	return &matches[0]
}

func exploreCase(t *testing.T, tc table2Case) *snowboard.ExploreOutcome {
	t.Helper()
	env := snowboard.NewEnv(tc.version)
	var profiles []snowboard.Profile
	for i, p := range []*snowboard.Prog{tc.writer, tc.reader} {
		accs, df, res := env.Profile(p)
		if res.Crashed() {
			t.Fatalf("sequential profiling of test %d crashed: %v", i, res.Faults)
		}
		profiles = append(profiles, snowboard.Profile{TestID: i, Accesses: accs, DFLeader: df})
	}
	set := snowboard.Identify(profiles)
	hint := findHint(t, set, tc.hint)
	trials := tc.trials
	if trials == 0 {
		trials = 192
	}
	x := &snowboard.Explorer{
		Env:       env,
		Trials:    trials,
		Seed:      1,
		Mode:      snowboard.ModeSnowboard,
		Detect:    detect.DefaultOptions(),
		KnownPMCs: set,
		Fsck:      func() []string { return env.K.FsckHost() },
	}
	out := x.Explore(snowboard.ConcurrentTest{Writer: tc.writer, Reader: tc.reader, Hint: hint})
	return &out
}

func assertFound(t *testing.T, tc table2Case, out *snowboard.ExploreOutcome) {
	t.Helper()
	for _, is := range out.Issues {
		if is.BugID != tc.id {
			continue
		}
		for _, k := range tc.wantKind {
			if is.Kind == k {
				t.Logf("issue #%d exposed as [%s] %q on trial %d", tc.id, is.Kind, is.Desc, out.TrialOf(is))
				return
			}
		}
	}
	t.Fatalf("issue #%d not exposed in %d trials; found: %+v", tc.id, out.Trials, out.Issues)
}

// --- per-issue programs ---

func msgWriterProg() *snowboard.Prog { // creates then removes the queue
	return P(
		C(kernel.SysMsggetNr, 0x5ee),
		C(kernel.SysMsgctlNr, 0x5ee, kernel.IPCRmid),
	)
}

func msgReaderProg() *snowboard.Prog { // second msgget performs a found-lookup
	return P(
		C(kernel.SysMsggetNr, 0x5ee),
		C(kernel.SysMsggetNr, 0x5ee),
	)
}

func TestTable2Issue1RhashtableDoubleFetch(t *testing.T) {
	tc := table2Case{
		id: 1, version: snowboard.V5_3_10,
		writer: msgWriterProg(), reader: msgReaderProg(),
		hint:     hintSpec{writePfx: "rht_assign_unlock", readPfx: "rht_ptr"},
		wantKind: []detect.IssueKind{detect.KindPanic, detect.KindDataRace},
		trials:   256,
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	// The crash form must be reachable, not only the race shadow.
	var panicked bool
	for _, is := range out.Issues {
		if is.BugID == 1 && is.Kind == detect.KindPanic {
			panicked = true
		}
	}
	if !panicked {
		t.Fatalf("double fetch never dereferenced null in %d trials", out.Trials)
	}
}

func TestTable2Issue1AbsentIn512(t *testing.T) {
	// The 5.12-rc3 __rht_ptr reads the bucket once with RCU semantics:
	// neither the panic nor the race should appear.
	tc := table2Case{
		id: 1, version: snowboard.V5_12_RC3,
		writer: msgWriterProg(), reader: msgReaderProg(),
		hint:   hintSpec{writePfx: "rht_assign_unlock", readPfx: "rht_ptr"},
		trials: 128,
	}
	out := exploreCase(t, tc)
	for _, is := range out.Issues {
		if is.BugID == 1 {
			t.Fatalf("issue #1 reported on fixed kernel: %+v", is)
		}
		if is.Kind == detect.KindPanic {
			t.Fatalf("unexpected panic on fixed kernel: %+v", is)
		}
	}
}

func TestTable2Issue2SwapBootChecksum(t *testing.T) {
	tc := table2Case{
		id: 2, version: snowboard.V5_12_RC3,
		writer: P(
			C(kernel.SysOpenNr, 3, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.Ext4IOCSwapBoot), snowboard.Const(0)),
		),
		reader: P(
			C(kernel.SysOpenNr, 3, 0),
			CR(kernel.SysWriteNr, snowboard.ResultArg(0), snowboard.Const(65536), snowboard.Const(4096)),
		),
		hint:     hintSpec{writePfx: "swap_inode_boot_loader:store_target_block", readPfx: ""},
		wantKind: []detect.IssueKind{detect.KindFSError, detect.KindDataRace},
		trials:   256,
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	var fsError bool
	for _, is := range out.Issues {
		if is.BugID == 2 && is.Kind == detect.KindFSError {
			fsError = true
		}
	}
	if !fsError {
		t.Fatalf("checksum corruption never materialized on disk in %d trials", out.Trials)
	}
}

func TestTable2Issue3ExtentMagic(t *testing.T) {
	tc := table2Case{
		id: 3, version: snowboard.V5_3_10,
		writer: P(C(kernel.SysRenameNr, 3, 4)),
		reader: P(
			C(kernel.SysOpenNr, 3, 0),
			CR(kernel.SysReadNr, snowboard.ResultArg(0), snowboard.Const(4096)),
		),
		hint:     hintSpec{writePfx: "ext4_extent_grow:clear_eh_magic", readPfx: "ext4_ext_check_inode"},
		wantKind: []detect.IssueKind{detect.KindFSError, detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue4BlkIOError(t *testing.T) {
	tc := table2Case{
		id: 4, version: snowboard.V5_3_10,
		writer: P(
			C(kernel.SysOpenNr, 0, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.BLKBSZSET), snowboard.Const(512)),
		),
		reader: P(
			C(kernel.SysOpenNr, 0, 0),
			CR(kernel.SysReadNr, snowboard.ResultArg(0), snowboard.Const(4096)),
		),
		hint:     hintSpec{writePfx: "set_blocksize:store_bd_block_size", readPfx: "blk_update_request"},
		wantKind: []detect.IssueKind{detect.KindIOError, detect.KindDataRace},
		trials:   256,
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	var ioErr bool
	for _, is := range out.Issues {
		if is.BugID == 4 && is.Kind == detect.KindIOError {
			ioErr = true
		}
	}
	if !ioErr {
		t.Fatalf("I/O error never logged in %d trials", out.Trials)
	}
}

func TestTable2Issue5FadviseRace(t *testing.T) {
	tc := table2Case{
		id: 5, version: snowboard.V5_3_10,
		writer: P(
			C(kernel.SysOpenNr, 0, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.BLKBSZSET), snowboard.Const(1024)),
		),
		reader: P(
			C(kernel.SysOpenNr, 0, 0),
			CR(kernel.SysFadviseNr, snowboard.ResultArg(0), snowboard.Const(0), snowboard.Const(65536)),
		),
		hint:     hintSpec{writePfx: "set_blocksize:store_bd_block_size", readPfx: "generic_fadvise"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue6MpageRace(t *testing.T) {
	tc := table2Case{
		id: 6, version: snowboard.V5_3_10,
		writer: P(
			C(kernel.SysOpenNr, 0, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.BLKBSZSET), snowboard.Const(2048)),
		),
		reader: P(
			C(kernel.SysOpenNr, 0, 0),
			CR(kernel.SysReadNr, snowboard.ResultArg(0), snowboard.Const(4096)),
		),
		hint:     hintSpec{writePfx: "set_blocksize:store_sb_blkbits", readPfx: "do_mpage_readpage"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue7MtuRace(t *testing.T) {
	tc := table2Case{
		id: 7, version: snowboard.V5_3_10,
		writer: P(
			sock(kernel.AFInet, kernel.SockDgram, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCSIFMTU), snowboard.Const(1400)),
		),
		reader: P(
			sock(kernel.AFInet6, kernel.SockRaw, 0),
			CR(kernel.SysSendmsgNr, snowboard.ResultArg(0), snowboard.Const(512)),
		),
		hint:     hintSpec{writePfx: "__dev_set_mtu", readPfx: "rawv6_send_hdrinc"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue8PacketGetnameRace(t *testing.T) {
	tc := table2Case{
		id: 8, version: snowboard.V5_3_10,
		writer: P(
			sock(kernel.AFInet, kernel.SockDgram, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCETHTOOL), snowboard.Const(0x55)),
		),
		reader: P(
			sock(kernel.AFPacket, kernel.SockRaw, 0),
			CR(kernel.SysGetsocknameNr, snowboard.ResultArg(0)),
		),
		hint:     hintSpec{writePfx: "e1000_set_mac", readPfx: "packet_getname"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue9TornMAC(t *testing.T) {
	tc := table2Case{
		id: 9, version: snowboard.V5_3_10,
		writer: P(
			sock(kernel.AFInet, kernel.SockDgram, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCSIFHWADDR), snowboard.Const(0x2)),
		),
		reader: P(
			sock(kernel.AFInet, kernel.SockDgram, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCGIFHWADDR), snowboard.Const(0)),
		),
		hint:     hintSpec{writePfx: "eth_commit_mac_addr_change", readPfx: "dev_ifsioc_locked:memcpy"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue10Fib6Benign(t *testing.T) {
	tc := table2Case{
		id: 10, version: snowboard.V5_3_10,
		writer: P(
			sock(kernel.AFInet6, kernel.SockRaw, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCDELRT), snowboard.Const(0)),
		),
		reader: P(
			sock(kernel.AFInet6, kernel.SockRaw, 0),
			CR(kernel.SysConnectNr, snowboard.ResultArg(0), snowboard.Const(1), snowboard.ResultArg(0)),
		),
		hint:     hintSpec{writePfx: "fib6_clean_node:store_fn_sernum", readPfx: "fib6_get_cookie_safe"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	for _, is := range out.Issues {
		if is.BugID == 10 && is.Harmful {
			t.Fatalf("issue #10 must be classified benign: %+v", is)
		}
	}
}

func cfsWriter() *snowboard.Prog {
	return P(C(kernel.SysMkdirNr, 0x11), C(kernel.SysRmdirNr, 0x11))
}

func cfsReader() *snowboard.Prog {
	return P(C(kernel.SysOpenatCfsNr, 0x11))
}

func TestTable2Issue11ConfigfsLookup(t *testing.T) {
	tc := table2Case{
		id: 11, version: snowboard.V5_12_RC3,
		writer:   cfsWriter(),
		reader:   cfsReader(),
		hint:     hintSpec{writePfx: "configfs_detach_item", readPfx: "configfs_lookup:load_s_element"},
		wantKind: []detect.IssueKind{detect.KindPanic, detect.KindDataRace},
		trials:   256,
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	var panicked bool
	for _, is := range out.Issues {
		if is.BugID == 11 && is.Kind == detect.KindPanic {
			panicked = true
		}
	}
	if !panicked {
		t.Fatalf("configfs null dereference never reproduced in %d trials", out.Trials)
	}
}

func TestTable2Issue11AbsentIn53(t *testing.T) {
	tc := table2Case{
		id: 11, version: snowboard.V5_3_10,
		writer: cfsWriter(), reader: cfsReader(),
		hint:   hintSpec{writePfx: "configfs_detach_item", readPfx: ""},
		trials: 128,
	}
	out := exploreCase(t, tc)
	for _, is := range out.Issues {
		if is.BugID == 11 {
			t.Fatalf("issue #11 reported on locked (fixed) lookup: %+v", is)
		}
	}
}

func l2tpWriter() *snowboard.Prog {
	return P(
		sock(kernel.AFPppox, kernel.SockDgram, kernel.PxProtoOL2TP),
		sock(kernel.AFInet, kernel.SockDgram, 0),
		CR(kernel.SysConnectNr, snowboard.ResultArg(0), snowboard.Const(1), snowboard.ResultArg(1)),
	)
}

func l2tpReader() *snowboard.Prog {
	p := l2tpWriter()
	p.Calls = append(p.Calls, CR(kernel.SysSendmsgNr, snowboard.ResultArg(0), snowboard.Const(512)))
	return p
}

func TestTable2Issue12L2TPOrderViolation(t *testing.T) {
	tc := table2Case{
		id: 12, version: snowboard.V5_12_RC3,
		writer:   l2tpWriter(),
		reader:   l2tpReader(),
		hint:     hintSpec{writePfx: "l2tp_tunnel_register:list_add_rcu", readPfx: "l2tp_tunnel_get"},
		wantKind: []detect.IssueKind{detect.KindPanic, detect.KindDataRace},
		trials:   256,
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	var panicked bool
	for _, is := range out.Issues {
		if is.BugID == 12 && is.Kind == detect.KindPanic {
			panicked = true
		}
	}
	if !panicked {
		t.Fatalf("l2tp null dereference never reproduced in %d trials", out.Trials)
	}
}

func TestTable2Issue13SlabCounter(t *testing.T) {
	tc := table2Case{
		id: 13, version: snowboard.V5_12_RC3,
		writer:   P(sock(kernel.AFInet, kernel.SockStream, 0)),
		reader:   P(sock(kernel.AFInet, kernel.SockStream, 0)),
		hint:     hintSpec{writePfx: "cache_alloc_refill", readPfx: "cache_alloc_refill"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
		trials:   64,
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	for _, is := range out.Issues {
		if is.BugID == 13 && is.Harmful {
			t.Fatalf("issue #13 must be benign: %+v", is)
		}
	}
}

func TestTable2Issue14TTYAutoconfig(t *testing.T) {
	tc := table2Case{
		id: 14, version: snowboard.V5_12_RC3,
		writer: P(
			C(kernel.SysOpenNr, 1, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.TIOCSSERIAL), snowboard.Const(0)),
		),
		reader:   P(C(kernel.SysOpenNr, 1, 0)),
		hint:     hintSpec{writePfx: "uart_do_autoconfig", readPfx: "tty_port_open:load_port_flags"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue15SndCtlElemAdd(t *testing.T) {
	prog := P(
		C(kernel.SysOpenNr, 2, 0),
		CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SndCtlElemAddIoctl), snowboard.Const(512)),
	)
	tc := table2Case{
		id: 15, version: snowboard.V5_12_RC3,
		writer:   prog,
		reader:   prog.Clone(), // a duplicate concurrent test, like the paper's
		hint:     hintSpec{writePfx: "snd_ctl_elem_add:store_user_ctl_alloc_size", readPfx: "snd_ctl_elem_add:load_user_ctl_alloc_size"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}

func TestTable2Issue16CongestionControl(t *testing.T) {
	tc := table2Case{
		id: 16, version: snowboard.V5_12_RC3,
		writer: P(
			sock(kernel.AFInet, kernel.SockStream, 0),
			CR(kernel.SysSetsockoptNr, snowboard.ResultArg(0), snowboard.Const(kernel.TCPDefaultCC), snowboard.Const(1)),
		),
		reader: P(
			sock(kernel.AFInet, kernel.SockStream, 0),
			CR(kernel.SysSetsockoptNr, snowboard.ResultArg(0), snowboard.Const(kernel.TCPCongestion), snowboard.Const(0xff)),
		),
		hint:     hintSpec{writePfx: "tcp_set_default_congestion_control", readPfx: "tcp_set_congestion_control"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	out := exploreCase(t, tc)
	assertFound(t, tc, out)
	for _, is := range out.Issues {
		if is.BugID == 16 && is.Harmful {
			t.Fatalf("issue #16 must be benign: %+v", is)
		}
	}
}

func TestTable2Issue17FanoutRollover(t *testing.T) {
	tc := table2Case{
		id: 17, version: snowboard.V5_12_RC3,
		writer: P(
			sock(kernel.AFPacket, kernel.SockRaw, 0),
			CR(kernel.SysSetsockoptNr, snowboard.ResultArg(0), snowboard.Const(kernel.PacketFanout), snowboard.Const(1)),
			CR(kernel.SysSetsockoptNr, snowboard.ResultArg(0), snowboard.Const(kernel.PacketFanoutLeave), snowboard.Const(0)),
		),
		reader: P(
			sock(kernel.AFPacket, kernel.SockRaw, 0),
			CR(kernel.SysSetsockoptNr, snowboard.ResultArg(0), snowboard.Const(kernel.PacketFanout), snowboard.Const(1)),
			CR(kernel.SysSendmsgNr, snowboard.ResultArg(0), snowboard.Const(64)),
		),
		hint:     hintSpec{writePfx: "__fanout_unlink:store_num_members", readPfx: "fanout_demux_rollover:load_num_members"},
		wantKind: []detect.IssueKind{detect.KindDataRace},
	}
	assertFound(t, tc, exploreCase(t, tc))
}
