// Command sbexec is a Snowboard execution worker: it connects to an
// sbqueue coordinator, pops concurrent-test jobs, explores each with the
// PMC-hinted scheduler, and reports findings back. Run one per core or per
// machine, as the paper distributes testing across its machine-B fleet.
//
// Usage:
//
//	sbexec -addr 127.0.0.1:7070 [-version 5.12-rc3] [-trials 64]
//	       [-workers 0] [-state dir] [-name worker-1] [-idle-exit 5s]
//	       [-http :0] [-progress 10s]
//
// With -state, the worker opens the content-addressed artifact store rooted
// there and resolves by-reference jobs (corpus digest + pair indices, as
// enqueued by sbqueue -state) against it; each referenced corpus artifact
// is decoded once per process and cached. Without -state, a by-reference
// job is a configuration error and the worker exits with a clear message.
//
// With -workers N the process runs N explorer goroutines against one
// shared queue connection, each with its own simulated-kernel environment.
// Per-job seeds derive from the job ID alone, so findings are identical no
// matter how jobs land on workers.
//
// All worker chatter goes to stderr; with -http, the worker's own metrics
// (exec.tests, sched.trials, channel hits, …) are served live.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"snowboard"
	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "queue coordinator address")
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version")
		trials   = flag.Int("trials", 64, "interleaving trials per test")
		workers  = flag.Int("workers", 0, "explorer goroutines in this process (0 = one per CPU)")
		stateDir = flag.String("state", "", "artifact store directory for resolving by-reference jobs (must match the coordinator's -state)")
		name     = flag.String("name", hostDefault(), "worker name in reports")
		idleExit = flag.Duration("idle-exit", 5*time.Second, "exit after this long with an empty queue")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
	)
	flag.Parse()
	diag := obs.Diag
	diag.SetPrefix("sbexec[" + *name + "]")

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		diag.Printf("introspection listening on http://%s", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	client, err := queue.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cache := &corpusCache{m: make(map[string]*corpus.Corpus)}
	if *stateDir != "" {
		cache.st, err = snowboard.OpenStore(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		diag.Printf("resolving by-reference jobs from artifact store %s", *stateDir)
	}

	nw := par.Workers(*workers)
	var jobs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workLoop(client, cache, snowboard.Version(*version), *trials, *name, *idleExit, &jobs)
		}()
	}
	wg.Wait()
	diag.Printf("all %d explorer goroutines done, processed %d jobs", nw, jobs.Load())
}

// corpusCache resolves corpus artifacts referenced by jobs, decoding each
// digest at most once per process; safe for concurrent explorer goroutines.
type corpusCache struct {
	st *snowboard.Store
	mu sync.Mutex
	m  map[string]*corpus.Corpus
}

// get returns the decoded corpus for a hex digest, loading it from the
// store on first use.
func (cc *corpusCache) get(hex string) (*corpus.Corpus, error) {
	if cc.st == nil {
		return nil, fmt.Errorf("job references corpus artifact %.12s… but no artifact store is attached — rerun with -state pointing at the coordinator's store", hex)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.m[hex]; ok {
		return c, nil
	}
	d, err := snowboard.ParseDigest(hex)
	if err != nil {
		return nil, fmt.Errorf("bad corpus digest %q: %v", hex, err)
	}
	payload, err := cc.st.Get(snowboard.KindCorpus, d)
	if err != nil {
		return nil, fmt.Errorf("corpus artifact %.12s…: %v", hex, err)
	}
	c, err := corpus.DecodeCorpus(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("corpus artifact %.12s…: %v", hex, err)
	}
	cc.m[hex] = c
	return c, nil
}

// workLoop is one explorer goroutine: it owns a private simulated-kernel
// environment and pops jobs from the shared (mutex-guarded) client until
// the queue closes or stays empty past the idle deadline. Job seeds come
// from the job ID, not the goroutine, so placement cannot change results.
func workLoop(client *queue.Client, cache *corpusCache, version snowboard.Version, trials int, name string, idleExit time.Duration, jobs *atomic.Int64) {
	env := snowboard.NewEnv(version)
	x := &snowboard.Explorer{
		Env:    env,
		Trials: trials,
		Mode:   snowboard.ModeSnowboard,
		Detect: detect.DefaultOptions(),
		Fsck:   func() []string { return env.K.FsckHost() },
	}

	idleSince := time.Now()
	for {
		job, err := client.Pop()
		switch {
		case errors.Is(err, queue.ErrEmpty):
			if time.Since(idleSince) > idleExit {
				return
			}
			time.Sleep(100 * time.Millisecond)
			continue
		case errors.Is(err, queue.ErrClosed):
			return
		case err != nil:
			log.Fatal(err)
		}
		idleSince = time.Now()
		jobs.Add(1)

		if !job.Inline() {
			c, err := cache.get(job.Corpus)
			if err != nil {
				log.Fatalf("job %d: %v", job.ID, err)
			}
			if err := job.Resolve(c); err != nil {
				log.Fatal(err)
			}
		}

		x.Seed = int64(job.ID)*1009 + 1
		out := x.Explore(sched.ConcurrentTest{
			Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
		})
		res := queue.JobResult{
			JobID:     job.ID,
			Trials:    out.Trials,
			Exercised: out.Exercised,
			Worker:    name,
		}
		for _, is := range out.Issues {
			res.IssueIDs = append(res.IssueIDs, is.ID())
			if is.BugID != 0 {
				res.BugIDs = append(res.BugIDs, is.BugID)
			}
		}
		if err := client.Report(res); err != nil {
			log.Fatal(err)
		}
	}
}

func hostDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}
