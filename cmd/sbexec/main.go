// Command sbexec is a Snowboard execution worker: it connects to an
// sbqueue coordinator, pops concurrent-test jobs, explores each with the
// PMC-hinted scheduler, and reports findings back. Run one per core or per
// machine, as the paper distributes testing across its machine-B fleet.
//
// Usage:
//
//	sbexec -addr 127.0.0.1:7070 [-version 5.12-rc3] [-trials 64]
//	       [-name worker-1] [-idle-exit 5s] [-http :0] [-progress 10s]
//
// All worker chatter goes to stderr; with -http, the worker's own metrics
// (exec.tests, sched.trials, channel hits, …) are served live.
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"time"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/obs"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "queue coordinator address")
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version")
		trials   = flag.Int("trials", 64, "interleaving trials per test")
		name     = flag.String("name", hostDefault(), "worker name in reports")
		idleExit = flag.Duration("idle-exit", 5*time.Second, "exit after this long with an empty queue")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
	)
	flag.Parse()
	diag := obs.Diag
	diag.SetPrefix("sbexec[" + *name + "]")

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		diag.Printf("introspection listening on http://%s", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	client, err := queue.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	env := snowboard.NewEnv(snowboard.Version(*version))
	x := &snowboard.Explorer{
		Env:    env,
		Trials: *trials,
		Mode:   snowboard.ModeSnowboard,
		Detect: detect.DefaultOptions(),
		Fsck:   func() []string { return env.K.FsckHost() },
	}

	jobs, idleSince := 0, time.Now()
	for {
		job, err := client.Pop()
		switch {
		case errors.Is(err, queue.ErrEmpty):
			if time.Since(idleSince) > *idleExit {
				diag.Printf("queue idle, processed %d jobs, exiting", jobs)
				return
			}
			time.Sleep(100 * time.Millisecond)
			continue
		case errors.Is(err, queue.ErrClosed):
			diag.Printf("queue closed, processed %d jobs", jobs)
			return
		case err != nil:
			log.Fatal(err)
		}
		idleSince = time.Now()
		jobs++

		x.Seed = int64(job.ID)*1009 + 1
		out := x.Explore(sched.ConcurrentTest{
			Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
		})
		res := queue.JobResult{
			JobID:     job.ID,
			Trials:    out.Trials,
			Exercised: out.Exercised,
			Worker:    *name,
		}
		for _, is := range out.Issues {
			res.IssueIDs = append(res.IssueIDs, is.ID())
			if is.BugID != 0 {
				res.BugIDs = append(res.BugIDs, is.BugID)
			}
		}
		if err := client.Report(res); err != nil {
			log.Fatal(err)
		}
	}
}

func hostDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}
