// Command sbexec is a Snowboard execution worker: it connects to an
// sbqueue coordinator, leases concurrent-test jobs, explores each with the
// PMC-hinted scheduler, and reports findings back. Run one per core or per
// machine, as the paper distributes testing across its machine-B fleet.
//
// Usage:
//
//	sbexec -addr 127.0.0.1:7070 [-version 5.12-rc3] [-trials 64]
//	       [-workers 0] [-state dir] [-name worker-1] [-idle-exit 5s]
//	       [-retries 8] [-http :0] [-progress 10s]
//
// Delivery is at-least-once: each job arrives under a lease that the worker
// acks after reporting (or nacks on failure, so the coordinator redelivers
// it elsewhere instead of losing it). Long explorations keep their lease
// alive with periodic extends. Transient network errors never kill the
// process: the client reconnects with exponential backoff (up to -retries
// attempts per operation), and unresolvable by-reference jobs are nacked
// and counted (worker.poisoned) rather than crashing the worker.
//
// With -state, the worker opens the content-addressed artifact store rooted
// there and resolves by-reference jobs (corpus digest + pair indices, as
// enqueued by sbqueue -state) against it; each referenced corpus artifact
// is decoded once per process and cached. Without -state, a by-reference
// job cannot be explored and is nacked with a clear reason — after the
// coordinator's retry budget it lands on the dead-letter list instead of
// disappearing.
//
// With -workers N the process runs N explorer goroutines against one
// shared queue connection, each with its own simulated-kernel environment.
// Per-job seeds derive from the job ID alone, so findings are identical no
// matter how jobs land on workers — or how often a job is redelivered.
//
// All worker chatter goes to stderr; with -http, the worker's own metrics
// (exec.tests, sched.trials, channel hits, …) are served live.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"snowboard"
	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
)

var mPoisoned = obs.C(obs.MWorkerPoisoned)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "queue coordinator address")
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version")
		trials   = flag.Int("trials", 64, "interleaving trials per test")
		workers  = flag.Int("workers", 0, "explorer goroutines in this process (0 = one per CPU)")
		stateDir = flag.String("state", "", "artifact store directory for resolving by-reference jobs (must match the coordinator's -state)")
		name     = flag.String("name", hostDefault(), "worker name in reports")
		idleExit = flag.Duration("idle-exit", 5*time.Second, "exit after this long with an empty queue")
		retries  = flag.Int("retries", 8, "reconnect attempts (exponential backoff) per queue operation")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /events, /coverage, /campaign, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
		events   = flag.String("events", "", "append flight-recorder events to this file as JSONL")
	)
	flag.Parse()
	diag := obs.Diag
	diag.SetPrefix("sbexec[" + *name + "]")

	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		obs.Events.SetSink(f)
		diag.Printf("flight-recorder events -> %s", *events)
	}
	stopSampler := obs.StartSampler(time.Second)
	defer stopSampler()

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		diag.Printf("introspection listening on http://%s", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	client, err := queue.DialOpts(*addr, queue.DialOptions{MaxRetries: *retries})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cache := &corpusCache{m: make(map[string]*corpus.Corpus)}
	if *stateDir != "" {
		cache.st, err = snowboard.OpenStore(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		diag.Printf("resolving by-reference jobs from artifact store %s", *stateDir)
	}

	nw := par.Workers(*workers)
	var jobs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workLoop(client, cache, snowboard.Version(*version), *trials, *name, *idleExit, &jobs)
		}()
	}
	wg.Wait()
	diag.Printf("all %d explorer goroutines done, processed %d jobs", nw, jobs.Load())
}

// corpusCache resolves corpus artifacts referenced by jobs, decoding each
// digest at most once per process; safe for concurrent explorer goroutines.
type corpusCache struct {
	st *snowboard.Store
	mu sync.Mutex
	m  map[string]*corpus.Corpus
}

// get returns the decoded corpus for a hex digest, loading it from the
// store on first use.
func (cc *corpusCache) get(hex string) (*corpus.Corpus, error) {
	if cc.st == nil {
		return nil, fmt.Errorf("job references corpus artifact %.12s… but no artifact store is attached — rerun with -state pointing at the coordinator's store", hex)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.m[hex]; ok {
		return c, nil
	}
	d, err := snowboard.ParseDigest(hex)
	if err != nil {
		return nil, fmt.Errorf("bad corpus digest %q: %v", hex, err)
	}
	payload, err := cc.st.Get(snowboard.KindCorpus, d)
	if err != nil {
		return nil, fmt.Errorf("corpus artifact %.12s…: %v", hex, err)
	}
	c, err := corpus.DecodeCorpus(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("corpus artifact %.12s…: %v", hex, err)
	}
	cc.m[hex] = c
	return c, nil
}

// keepLease extends a lease at half-TTL intervals until the returned stop
// function is called, so explorations longer than the coordinator's lease
// timeout are not reaped out from under a live worker.
func keepLease(client *queue.Client, ls queue.Lease) (stop func()) {
	ttl := time.Until(ls.Deadline)
	if ttl < 100*time.Millisecond {
		ttl = 100 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 2)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := client.Extend(ls.ID, 0); err != nil {
					// Lease gone (expired or settled elsewhere); the
					// coordinator deduplicates, nothing more to keep alive.
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// workLoop is one explorer goroutine: it owns a private simulated-kernel
// environment and leases jobs from the shared (mutex-guarded) client until
// the queue closes or stays empty past the idle deadline. Job seeds come
// from the job ID, not the goroutine, so placement — and redelivery —
// cannot change results. Failures are contained: poisoned jobs are nacked,
// network errors are retried inside the client, and only an exhausted
// retry budget ends the loop (never the whole process via log.Fatal).
func workLoop(client *queue.Client, cache *corpusCache, version snowboard.Version, trials int, name string, idleExit time.Duration, jobs *atomic.Int64) {
	diag := obs.Diag
	env := snowboard.NewEnv(version)
	x := &snowboard.Explorer{
		Env:    env,
		Trials: trials,
		Mode:   snowboard.ModeSnowboard,
		Detect: detect.DefaultOptions(),
		Fsck:   func() []string { return env.K.FsckHost() },
	}

	idleSince := time.Now()
	for {
		ls, err := client.Lease()
		switch {
		case errors.Is(err, queue.ErrEmpty):
			if time.Since(idleSince) > idleExit {
				return
			}
			time.Sleep(100 * time.Millisecond)
			continue
		case errors.Is(err, queue.ErrClosed):
			return
		case err != nil:
			// The client already reconnected with backoff and gave up: the
			// coordinator is unreachable. Leased work redelivers elsewhere.
			diag.Printf("lease: %v — worker goroutine exiting", err)
			return
		}
		idleSince = time.Now()
		jobs.Add(1)
		job := ls.Job

		if !job.Inline() {
			c, rerr := cache.get(job.Corpus)
			if rerr == nil {
				rerr = job.Resolve(c)
			}
			if rerr != nil {
				// Poisoned job: hand it back so the coordinator redelivers
				// it (maybe another worker has the store) or dead-letters it
				// with this reason — never crash the whole worker process.
				mPoisoned.Inc()
				diag.Printf("job %d unresolvable: %v — nacking", job.ID, rerr)
				if nerr := client.Nack(ls.ID, rerr.Error()); nerr != nil && !errors.Is(nerr, queue.ErrUnknownLease) {
					diag.Printf("nack job %d: %v", job.ID, nerr)
				}
				continue
			}
		}

		stopKeep := keepLease(client, ls)
		x.Seed = int64(job.ID)*1009 + 1
		// Stitch this job's spans and events to the originating campaign's
		// trace, so a distributed run's timeline reads end-to-end.
		x.Trace = job.Trace
		out := x.Explore(sched.ConcurrentTest{
			Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
		})
		stopKeep()
		res := queue.JobResult{
			JobID:     job.ID,
			Trials:    out.Trials,
			Exercised: out.Exercised,
			Worker:    name,
		}
		for _, is := range out.Issues {
			res.IssueIDs = append(res.IssueIDs, is.ID())
			if is.BugID != 0 {
				res.BugIDs = append(res.BugIDs, is.BugID)
			}
		}
		if err := client.Report(res); err != nil {
			// Result never landed: nack so the job redelivers and reports
			// from a healthier worker.
			diag.Printf("report job %d: %v — nacking for redelivery", job.ID, err)
			if nerr := client.Nack(ls.ID, "report failed: "+err.Error()); nerr != nil && !errors.Is(nerr, queue.ErrUnknownLease) {
				diag.Printf("nack job %d: %v", job.ID, nerr)
			}
			continue
		}
		if err := client.Ack(ls.ID); err != nil && !errors.Is(err, queue.ErrUnknownLease) {
			// ErrUnknownLease is benign: the lease expired and the job was
			// redelivered; the coordinator folds the duplicate away.
			diag.Printf("ack job %d: %v", job.ID, err)
		}
	}
}

func hostDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}
