package main

import (
	"bufio"
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestSbexecUsage(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/sbexec")
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-h")
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatal(err)
		}
	}
	if !strings.Contains(stderr.String(), "-idle-exit") || !strings.Contains(stderr.String(), "-trials") {
		t.Fatalf("usage text missing flags:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("usage leaked to stdout:\n%s", stdout.String())
	}
}

var listenRE = regexp.MustCompile(`queue listening on ([0-9.]+:[0-9]+)`)

// TestSbexecProcessesJobs is the end-to-end smoke: against a live
// coordinator, the worker leases and reports the whole batch, exits 0, and
// keeps stdout machine-clean (all chatter belongs on stderr).
func TestSbexecProcessesJobs(t *testing.T) {
	worker := buildTool(t, "snowboard/cmd/sbexec")
	coord := buildTool(t, "snowboard/cmd/sbqueue")

	ccmd := exec.Command(coord,
		"-addr", "127.0.0.1:0", "-seed", "1", "-fuzz", "20", "-corpus", "8",
		"-tests", "2", "-lease", "10s", "-wait", "5s", "-progress", "0")
	var cOut bytes.Buffer
	ccmd.Stdout = &cOut
	stderrPipe, err := ccmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := ccmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer ccmd.Process.Kill()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never announced its listen address")
	}

	var wOut, wErr bytes.Buffer
	wcmd := exec.Command(worker,
		"-addr", addr, "-trials", "2", "-workers", "1", "-idle-exit", "2s", "-progress", "0")
	wcmd.Stdout, wcmd.Stderr = &wOut, &wErr
	if err := wcmd.Run(); err != nil {
		t.Fatalf("worker exit error: %v\nstderr:\n%s", err, wErr.String())
	}
	if wOut.Len() != 0 {
		t.Fatalf("worker chatter leaked to stdout:\n%s", wOut.String())
	}
	if !strings.Contains(wErr.String(), "processed") {
		t.Fatalf("worker never reported processing jobs:\n%s", wErr.String())
	}

	if err := ccmd.Wait(); err != nil {
		t.Fatalf("coordinator exit error: %v\nstdout:\n%s", err, cOut.String())
	}
	if !strings.Contains(cOut.String(), "2/2 jobs reported") {
		t.Fatalf("coordinator summary missing job accounting:\n%s", cOut.String())
	}
}
