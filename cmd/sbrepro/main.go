// Command sbrepro deterministically replays saved reproduction bundles
// (§6 "Bug Diagnosis and Deterministic Reproduction"): for each bundle it
// boots the matching simulated kernel, re-executes the recorded
// bug-exposing trial, and prints the kernel console plus the two-column
// interleaving diagnosis around the PMC.
//
// Usage:
//
//	sbrepro -bundle finding.json [-quiet]
//	sbrepro [-workers 0] [-quiet] finding1.json finding2.json ...
//
// Several bundles replay in parallel (one simulated kernel per worker)
// but print in argument order; replay itself is deterministic, so the
// output is byte-identical at any worker count. Exit status is 1 if any
// replay surfaced no harmful finding (a stale bundle).
//
// Bundles are produced by cmd/snowboard's -repro-dir flag or by callers of
// the library's Explore + SaveBundle.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/diagnose"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/sched"
	"snowboard/internal/trace"
)

func main() {
	var (
		path    = flag.String("bundle", "", "path to a reproduction bundle (JSON); positional arguments add more")
		workers = flag.Int("workers", 0, "parallel replay goroutines (0 = one per CPU); output order is unaffected")
		quiet   = flag.Bool("quiet", false, "suppress the interleaving diagram")
	)
	flag.Parse()
	obs.Diag.SetPrefix("sbrepro")

	paths := flag.Args()
	if *path != "" {
		paths = append([]string{*path}, paths...)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	type replayOut struct {
		text  string
		stale bool
		err   error
	}
	outs := par.Map(par.Workers(*workers), len(paths), func(_, i int) replayOut {
		var sb strings.Builder
		stale, err := replayBundle(&sb, paths[i], *quiet)
		return replayOut{text: sb.String(), stale: stale, err: err}
	})

	exit := 0
	for i, out := range outs {
		if i > 0 {
			fmt.Println()
		}
		if out.err != nil {
			log.Fatal(out.err)
		}
		fmt.Print(out.text)
		if out.stale {
			obs.Diag.Printf("warning: replay of %s surfaced no harmful finding — bundle may be stale", paths[i])
			exit = 1
		}
	}
	os.Exit(exit)
}

// replayBundle loads and replays one bundle, rendering the full report
// into w. It returns stale=true when the replay surfaced no harmful
// finding — the recorded interleaving no longer exposes the bug.
func replayBundle(w *strings.Builder, path string, quiet bool) (stale bool, err error) {
	b, err := sched.LoadBundle(path)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "replaying %s (kernel %s", path, b.Version)
	if b.BugID != 0 {
		fmt.Fprintf(w, ", Table 2 issue #%d", b.BugID)
	}
	fmt.Fprintln(w, ")")

	env := snowboard.NewEnv(b.Version)
	var tr trace.Trace
	res := sched.Replay(env, sched.ConcurrentTest{Writer: b.Writer, Reader: b.Reader, Hint: b.Hint}, b.State, &tr)
	env.M.SetTrace(nil)

	issues := detect.Analyze(detect.TrialInput{
		Console:  res.Console,
		Trace:    &tr,
		PostScan: env.K.FsckHost(),
		Hung:     res.Hung,
		Deadlock: res.Deadlock,
	}, detect.DefaultOptions())

	fmt.Fprintln(w, "\nguest console:")
	for _, l := range res.Console {
		fmt.Fprintf(w, "  %s\n", l)
	}
	fmt.Fprintln(w, "\nfindings:")
	for _, is := range issues {
		fmt.Fprintf(w, "  [%s] %s", is.Kind, is.Desc)
		if is.BugID != 0 {
			fmt.Fprintf(w, "  (Table 2 issue #%d)", is.BugID)
		}
		fmt.Fprintln(w)
	}
	if !quiet {
		fmt.Fprintln(w)
		fmt.Fprintln(w, diagnose.Render(&tr, b.Hint, issues, diagnose.DefaultOptions()))
	}
	return !res.Crashed() && detect.Harmless(issues), nil
}
