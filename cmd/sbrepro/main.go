// Command sbrepro deterministically replays saved reproduction bundles
// (§6 "Bug Diagnosis and Deterministic Reproduction"): for each bundle it
// boots the matching simulated kernel, re-executes the recorded
// bug-exposing trial, and prints the kernel console plus the two-column
// interleaving diagnosis around the PMC.
//
// Usage:
//
//	sbrepro -bundle finding.json [-quiet]
//	sbrepro [-workers 0] [-quiet] finding1.json finding2.json ...
//	sbrepro -state dir [-report <digest>] [-quiet]
//
// With -state, sbrepro replays straight out of the content-addressed
// artifact store written by snowboard -state: -report names a stored report
// artifact by (a prefix of) its hex digest, and every crash-level finding
// in it that recorded a replayable trial is replayed. With -state and no
// -report, the stored report digests are listed.
//
// Several bundles replay in parallel (one simulated kernel per worker)
// but print in argument order; replay itself is deterministic, so the
// output is byte-identical at any worker count. Exit status is 1 if any
// replay surfaced no harmful finding (a stale bundle).
//
// Bundles are produced by cmd/snowboard's -repro-dir flag or by callers of
// the library's Explore + SaveBundle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/diagnose"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/sched"
	"snowboard/internal/trace"
)

func main() {
	var (
		path     = flag.String("bundle", "", "path to a reproduction bundle (JSON); positional arguments add more")
		workers  = flag.Int("workers", 0, "parallel replay goroutines (0 = one per CPU); output order is unaffected")
		quiet    = flag.Bool("quiet", false, "suppress the interleaving diagram")
		stateDir = flag.String("state", "", "artifact store directory: replay findings from a stored report instead of bundles")
		reportD  = flag.String("report", "", "hex digest (or unique prefix) of the stored report to replay; empty lists stored reports")
		events   = flag.String("events", "", "append flight-recorder events to this file as JSONL")
	)
	flag.Parse()
	obs.Diag.SetPrefix("sbrepro")

	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		obs.Events.SetSink(f)
		defer obs.Events.SetSink(nil)
	}

	if *stateDir != "" {
		os.Exit(replayStore(*stateDir, *reportD, *workers, *quiet))
	}

	paths := flag.Args()
	if *path != "" {
		paths = append([]string{*path}, paths...)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	type replayOut struct {
		text  string
		stale bool
		err   error
	}
	outs := par.Map(par.Workers(*workers), len(paths), func(_, i int) replayOut {
		var sb strings.Builder
		stale, err := replayBundle(&sb, paths[i], *quiet)
		return replayOut{text: sb.String(), stale: stale, err: err}
	})

	exit := 0
	for i, out := range outs {
		if i > 0 {
			fmt.Println()
		}
		if out.err != nil {
			log.Fatal(out.err)
		}
		fmt.Print(out.text)
		if out.stale {
			obs.Diag.Printf("warning: replay of %s surfaced no harmful finding — bundle may be stale", paths[i])
			exit = 1
		}
	}
	os.Exit(exit)
}

// replayBundle loads and replays one bundle, rendering the full report
// into w. It returns stale=true when the replay surfaced no harmful
// finding — the recorded interleaving no longer exposes the bug.
func replayBundle(w *strings.Builder, path string, quiet bool) (stale bool, err error) {
	b, err := sched.LoadBundle(path)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "replaying %s (kernel %s", path, b.Version)
	if b.BugID != 0 {
		fmt.Fprintf(w, ", Table 2 issue #%d", b.BugID)
	}
	fmt.Fprintln(w, ")")
	ct := sched.ConcurrentTest{Writer: b.Writer, Reader: b.Reader, Hint: b.Hint}
	return replayState(w, b.Version, ct, b.State, quiet), nil
}

// replayState re-executes one recorded bug-exposing trial and renders the
// console, findings, and (unless quiet) the interleaving diagram into w.
// It returns true when the replay surfaced no harmful finding.
func replayState(w *strings.Builder, version snowboard.Version, ct sched.ConcurrentTest, st *sched.ReproState, quiet bool) (stale bool) {
	env := snowboard.NewEnv(version)
	var tr trace.Trace
	res := sched.Replay(env, ct, st, &tr)
	env.M.SetTrace(nil)

	issues := detect.Analyze(detect.TrialInput{
		Console:  res.Console,
		Trace:    &tr,
		PostScan: env.K.FsckHost(),
		Hung:     res.Hung,
		Deadlock: res.Deadlock,
	}, detect.DefaultOptions())

	fmt.Fprintln(w, "\nguest console:")
	for _, l := range res.Console {
		fmt.Fprintf(w, "  %s\n", l)
	}
	fmt.Fprintln(w, "\nfindings:")
	for _, is := range issues {
		fmt.Fprintf(w, "  [%s] %s", is.Kind, is.Desc)
		if is.BugID != 0 {
			fmt.Fprintf(w, "  (Table 2 issue #%d)", is.BugID)
		}
		fmt.Fprintln(w)
	}
	if !quiet {
		fmt.Fprintln(w)
		fmt.Fprintln(w, diagnose.Render(&tr, ct.Hint, issues, diagnose.DefaultOptions()))
	}
	return !res.Crashed() && detect.Harmless(issues)
}

// replayStore replays every crash-level finding of a stored report artifact
// that recorded a replayable trial, or lists the stored reports when no
// digest is given. Returns the process exit code.
func replayStore(dir, digestPrefix string, workers int, quiet bool) int {
	st, err := snowboard.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	reports := st.List(snowboard.KindReport)
	if digestPrefix == "" {
		if len(reports) == 0 {
			fmt.Printf("no report artifacts in %s — produce one with: snowboard -state %s\n", dir, dir)
			return 2
		}
		fmt.Printf("report artifacts in %s (replay with -report <digest>):\n", dir)
		for _, d := range reports {
			fmt.Printf("  %s\n", d)
		}
		return 0
	}
	var match []snowboard.Digest
	for _, d := range reports {
		if strings.HasPrefix(d.String(), digestPrefix) {
			match = append(match, d)
		}
	}
	switch {
	case len(match) == 0:
		log.Fatalf("no report artifact matching %q in %s (run without -report to list)", digestPrefix, dir)
	case len(match) > 1:
		log.Fatalf("digest prefix %q is ambiguous: %d matches", digestPrefix, len(match))
	}
	payload, err := st.Get(snowboard.KindReport, match[0])
	if err != nil {
		log.Fatal(err)
	}
	var r snowboard.Report
	if err := json.Unmarshal(payload, &r); err != nil {
		log.Fatalf("report artifact %s: %v", match[0].Short(), err)
	}

	var recIDs []int
	for _, id := range r.BugIDs() {
		if r.Issues[id].Repro == nil {
			obs.Diag.Printf("issue #%d has no recorded replayable trial; skipping", id)
			continue
		}
		recIDs = append(recIDs, id)
	}
	if len(recIDs) == 0 {
		fmt.Printf("report %s: no replayable findings\n", match[0].Short())
		return 1
	}

	type replayOut struct {
		text  string
		stale bool
	}
	outs := par.Map(par.Workers(workers), len(recIDs), func(_, i int) replayOut {
		rec := r.Issues[recIDs[i]]
		var sb strings.Builder
		fmt.Fprintf(&sb, "replaying report %s issue #%d (kernel %s)\n", match[0].Short(), recIDs[i], r.Version)
		stale := replayState(&sb, r.Version, rec.Test, rec.Repro, quiet)
		return replayOut{text: sb.String(), stale: stale}
	})
	exit := 0
	for i, out := range outs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(out.text)
		if out.stale {
			obs.Diag.Printf("warning: replay of issue #%d surfaced no harmful finding — stored trial may be stale", recIDs[i])
			exit = 1
		}
	}
	return exit
}
