// Command sbrepro deterministically replays a saved reproduction bundle
// (§6 "Bug Diagnosis and Deterministic Reproduction"): it boots the matching
// simulated kernel, re-executes the recorded bug-exposing trial, and prints
// the kernel console plus the two-column interleaving diagnosis around the
// PMC.
//
// Usage:
//
//	sbrepro -bundle finding.json [-quiet]
//
// Bundles are produced by cmd/snowboard's -repro-dir flag or by callers of
// the library's Explore + SaveBundle.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/diagnose"
	"snowboard/internal/obs"
	"snowboard/internal/sched"
	"snowboard/internal/trace"
)

func main() {
	var (
		path  = flag.String("bundle", "", "path to the reproduction bundle (JSON)")
		quiet = flag.Bool("quiet", false, "suppress the interleaving diagram")
	)
	flag.Parse()
	obs.Diag.SetPrefix("sbrepro")
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	b, err := sched.LoadBundle(*path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %s (kernel %s", *path, b.Version)
	if b.BugID != 0 {
		fmt.Printf(", Table 2 issue #%d", b.BugID)
	}
	fmt.Println(")")

	env := snowboard.NewEnv(b.Version)
	var tr trace.Trace
	res := sched.Replay(env, sched.ConcurrentTest{Writer: b.Writer, Reader: b.Reader, Hint: b.Hint}, b.State, &tr)
	env.M.SetTrace(nil)

	issues := detect.Analyze(detect.TrialInput{
		Console:  res.Console,
		Trace:    &tr,
		PostScan: env.K.FsckHost(),
		Hung:     res.Hung,
		Deadlock: res.Deadlock,
	}, detect.DefaultOptions())

	fmt.Println("\nguest console:")
	for _, l := range res.Console {
		fmt.Printf("  %s\n", l)
	}
	fmt.Println("\nfindings:")
	for _, is := range issues {
		fmt.Printf("  [%s] %s", is.Kind, is.Desc)
		if is.BugID != 0 {
			fmt.Printf("  (Table 2 issue #%d)", is.BugID)
		}
		fmt.Println()
	}
	if !*quiet {
		fmt.Println()
		fmt.Println(diagnose.Render(&tr, b.Hint, issues, diagnose.DefaultOptions()))
	}
	if !res.Crashed() && detect.Harmless(issues) {
		obs.Diag.Printf("warning: replay surfaced no harmful finding — bundle may be stale")
		os.Exit(1)
	}
}
