// Command sbrepro deterministically replays saved reproduction bundles
// (§6 "Bug Diagnosis and Deterministic Reproduction"): for each bundle it
// boots the matching simulated kernel, re-executes the recorded
// bug-exposing trial, and prints the kernel console plus the two-column
// interleaving diagnosis around the PMC.
//
// Usage:
//
//	sbrepro -bundle finding.json [-quiet]
//	sbrepro [-workers 0] [-quiet] finding1.json finding2.json ...
//	sbrepro -state dir [-report <digest>] [-quiet]
//	sbrepro -state dir -min <digest> [-quiet]
//
// With -state, sbrepro replays straight out of the content-addressed
// artifact store written by snowboard -state: -report names a stored report
// artifact by (a prefix of) its hex digest, and every crash-level finding
// in it that recorded a replayable trial is replayed. -min names a
// minimized SBRB repro bundle produced by the triage stage; the replay
// recomputes the crash signature and checks it against the one recorded in
// the bundle, printing `signature: <key>` on success. With -state and an
// empty -report (or -min), the matching stored artifacts are listed.
//
// Several bundles replay in parallel (one simulated kernel per worker)
// but print in argument order; replay itself is deterministic, so the
// output is byte-identical at any worker count.
//
// Exit status:
//
//	0  every replay reproduced a harmful finding (and, for -min, the
//	   recorded signature)
//	1  a replay ran but surfaced no harmful finding, or a -min replay's
//	   signature diverged from the recorded one — the bundle is stale
//	   relative to the current simulator, not damaged
//	2  usage errors: bad flags, missing files, no or ambiguous digest match
//	3  stale bundle: the artifact was written under a different bundle
//	   format version and must be regenerated (it was never replayed)
//	4  corrupt bundle: the artifact cannot be decoded at all — truncated,
//	   checksum-violating, or not a bundle
//
// Bundles are produced by cmd/snowboard's -repro-dir flag, by the triage
// stage of a -state campaign, or by callers of the library's Explore +
// SaveBundle.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/diagnose"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/trace"
	"snowboard/internal/triage"
)

// Documented exit codes (see the package comment).
const (
	exitOK            = 0
	exitStaleReplay   = 1
	exitUsage         = 2
	exitStaleBundle   = 3
	exitCorruptBundle = 4
)

// classifyExit maps a bundle load/decode error to the documented exit code:
// format-version mismatches are stale (3), undecodable bytes are corrupt
// (4), and everything else — missing files, bad digests — is a usage
// error (2).
func classifyExit(err error) int {
	switch {
	case errors.Is(err, sched.ErrBundleStale), errors.Is(err, triage.ErrStale):
		return exitStaleBundle
	case errors.Is(err, sched.ErrBundleCorrupt), errors.Is(err, triage.ErrCorrupt), errors.Is(err, store.ErrCorrupt):
		return exitCorruptBundle
	default:
		return exitUsage
	}
}

// fail prints a classified diagnostic to stderr and exits. Stale and
// corrupt bundles get distinct messages so scripts (and humans) can tell
// "regenerate this" from "this artifact is damaged".
func fail(err error) {
	code := classifyExit(err)
	switch code {
	case exitStaleBundle:
		fmt.Fprintf(os.Stderr, "sbrepro: stale bundle (regenerate with the current tools): %v\n", err)
	case exitCorruptBundle:
		fmt.Fprintf(os.Stderr, "sbrepro: corrupt bundle (artifact is damaged, not merely old): %v\n", err)
	default:
		fmt.Fprintf(os.Stderr, "sbrepro: %v\n", err)
	}
	os.Exit(code)
}

func main() {
	var (
		path     = flag.String("bundle", "", "path to a reproduction bundle (JSON); positional arguments add more")
		workers  = flag.Int("workers", 0, "parallel replay goroutines (0 = one per CPU); output order is unaffected")
		quiet    = flag.Bool("quiet", false, "suppress the interleaving diagram")
		stateDir = flag.String("state", "", "artifact store directory: replay findings from a stored report instead of bundles")
		reportD  = flag.String("report", "", "hex digest (or unique prefix) of the stored report to replay; empty lists stored reports")
		minD     = flag.String("min", "", "hex digest (or unique prefix) of a minimized SBRB repro bundle to replay; empty lists stored bundles (requires -state)")
		events   = flag.String("events", "", "append flight-recorder events to this file as JSONL")
	)
	flag.Parse()
	obs.Diag.SetPrefix("sbrepro")

	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		obs.Events.SetSink(f)
		defer obs.Events.SetSink(nil)
	}

	if minSet() {
		if *stateDir == "" {
			fmt.Fprintln(os.Stderr, "sbrepro: -min requires -state <dir>")
			os.Exit(exitUsage)
		}
		os.Exit(replayMin(*stateDir, *minD, *quiet))
	}

	if *stateDir != "" {
		os.Exit(replayStore(*stateDir, *reportD, *workers, *quiet))
	}

	paths := flag.Args()
	if *path != "" {
		paths = append([]string{*path}, paths...)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(exitUsage)
	}

	type replayOut struct {
		text  string
		stale bool
		err   error
	}
	outs := par.Map(par.Workers(*workers), len(paths), func(_, i int) replayOut {
		var sb strings.Builder
		stale, err := replayBundle(&sb, paths[i], *quiet)
		return replayOut{text: sb.String(), stale: stale, err: err}
	})

	exit := exitOK
	for i, out := range outs {
		if i > 0 {
			fmt.Println()
		}
		if out.err != nil {
			fail(fmt.Errorf("%s: %w", paths[i], out.err))
		}
		fmt.Print(out.text)
		if out.stale {
			obs.Diag.Printf("warning: replay of %s surfaced no harmful finding — bundle may be stale", paths[i])
			exit = exitStaleReplay
		}
	}
	os.Exit(exit)
}

// minSet reports whether -min was given on the command line (so an empty
// value still means "list the stored bundles").
func minSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "min" {
			set = true
		}
	})
	return set
}

// replayBundle loads and replays one bundle, rendering the full report
// into w. It returns stale=true when the replay surfaced no harmful
// finding — the recorded interleaving no longer exposes the bug.
func replayBundle(w *strings.Builder, path string, quiet bool) (stale bool, err error) {
	b, err := sched.LoadBundle(path)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "replaying %s (kernel %s", path, b.Version)
	if b.BugID != 0 {
		fmt.Fprintf(w, ", Table 2 issue #%d", b.BugID)
	}
	fmt.Fprintln(w, ")")
	ct := sched.ConcurrentTest{Writer: b.Writer, Reader: b.Reader, Hint: b.Hint}
	stale, _ = replayState(w, b.Version, ct, b.State, quiet)
	return stale, nil
}

// replayState re-executes one recorded bug-exposing trial and renders the
// console, findings, and (unless quiet) the interleaving diagram into w.
// It returns stale=true when the replay surfaced no harmful finding, plus
// the detected issues so callers can recompute crash signatures.
func replayState(w *strings.Builder, version snowboard.Version, ct sched.ConcurrentTest, st *sched.ReproState, quiet bool) (stale bool, issues []detect.Issue) {
	env := snowboard.NewEnv(version)
	var tr trace.Trace
	res := sched.Replay(env, ct, st, &tr)
	env.M.SetTrace(nil)

	issues = detect.Analyze(detect.TrialInput{
		Console:  res.Console,
		Trace:    &tr,
		PostScan: env.K.FsckHost(),
		Hung:     res.Hung,
		Deadlock: res.Deadlock,
	}, detect.DefaultOptions())

	fmt.Fprintln(w, "\nguest console:")
	for _, l := range res.Console {
		fmt.Fprintf(w, "  %s\n", l)
	}
	fmt.Fprintln(w, "\nfindings:")
	for _, is := range issues {
		fmt.Fprintf(w, "  [%s] %s", is.Kind, is.Desc)
		if is.BugID != 0 {
			fmt.Fprintf(w, "  (Table 2 issue #%d)", is.BugID)
		}
		fmt.Fprintln(w)
	}
	if !quiet {
		fmt.Fprintln(w)
		fmt.Fprintln(w, diagnose.Render(&tr, ct.Hint, issues, diagnose.DefaultOptions()))
	}
	return !res.Crashed() && detect.Harmless(issues), issues
}

// replayMin replays one minimized SBRB repro bundle out of the artifact
// store, recomputes the crash signature from the replay, and checks it
// against the one recorded at triage time. An empty digest prefix lists
// the stored bundles with their signatures. Returns the process exit code.
func replayMin(dir, digestPrefix string, quiet bool) int {
	s, err := store.Open(dir)
	if err != nil {
		fail(err)
	}
	bundles := s.List(store.KindRepro)
	if digestPrefix == "" {
		if len(bundles) == 0 {
			fmt.Printf("no repro bundles in %s — produce some with: snowboard -state %s\n", dir, dir)
			return exitUsage
		}
		fmt.Printf("minimized repro bundles in %s (replay with -min <digest>):\n", dir)
		for _, d := range bundles {
			line := fmt.Sprintf("  %s", d)
			if b, err := triage.LoadBundle(s, d); err == nil {
				line += fmt.Sprintf("  %s", b.Signature.Key())
			}
			fmt.Println(line)
		}
		return exitOK
	}
	var match []store.Digest
	for _, d := range bundles {
		if strings.HasPrefix(d.String(), digestPrefix) {
			match = append(match, d)
		}
	}
	switch {
	case len(match) == 0:
		fmt.Fprintf(os.Stderr, "sbrepro: no repro bundle matching %q in %s (run with empty -min to list)\n", digestPrefix, dir)
		return exitUsage
	case len(match) > 1:
		fmt.Fprintf(os.Stderr, "sbrepro: digest prefix %q is ambiguous: %d matches\n", digestPrefix, len(match))
		return exitUsage
	}
	b, err := triage.LoadBundle(s, match[0])
	if err != nil {
		fail(fmt.Errorf("bundle %s: %w", match[0].Short(), err))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "replaying minimized bundle %s (kernel %s", match[0].Short(), b.Kernel)
	if b.BugID != 0 {
		fmt.Fprintf(&sb, ", Table 2 issue #%d", b.BugID)
	}
	fmt.Fprintln(&sb, ")")
	// Staleness for minimized bundles is judged on the recomputed crash
	// signature, not on replayState's crash-centric heuristic: console
	// findings like fs-errors reproduce without a kernel crash.
	_, issues := replayState(&sb, b.Kernel, b.Test(), b.State, quiet)
	fmt.Print(sb.String())

	sig, ok := triage.SignatureOfIssues(issues, b.Hint, b.BugID)
	if !ok {
		fmt.Fprintf(os.Stderr, "sbrepro: replay of bundle %s surfaced no harmful finding — stale relative to this simulator\n", match[0].Short())
		return exitStaleReplay
	}
	fmt.Printf("signature: %s\n", sig.Key())
	if sig != b.Signature {
		fmt.Fprintf(os.Stderr, "sbrepro: replay signature %q does not match recorded %q — bundle is stale\n", sig.Key(), b.Signature.Key())
		return exitStaleReplay
	}
	return exitOK
}

// replayStore replays every crash-level finding of a stored report artifact
// that recorded a replayable trial, or lists the stored reports when no
// digest is given. Returns the process exit code.
func replayStore(dir, digestPrefix string, workers int, quiet bool) int {
	st, err := snowboard.OpenStore(dir)
	if err != nil {
		fail(err)
	}
	reports := st.List(snowboard.KindReport)
	if digestPrefix == "" {
		if len(reports) == 0 {
			fmt.Printf("no report artifacts in %s — produce one with: snowboard -state %s\n", dir, dir)
			return exitUsage
		}
		fmt.Printf("report artifacts in %s (replay with -report <digest>):\n", dir)
		for _, d := range reports {
			fmt.Printf("  %s\n", d)
		}
		return exitOK
	}
	var match []snowboard.Digest
	for _, d := range reports {
		if strings.HasPrefix(d.String(), digestPrefix) {
			match = append(match, d)
		}
	}
	switch {
	case len(match) == 0:
		fmt.Fprintf(os.Stderr, "sbrepro: no report artifact matching %q in %s (run without -report to list)\n", digestPrefix, dir)
		return exitUsage
	case len(match) > 1:
		fmt.Fprintf(os.Stderr, "sbrepro: digest prefix %q is ambiguous: %d matches\n", digestPrefix, len(match))
		return exitUsage
	}
	payload, err := st.Get(snowboard.KindReport, match[0])
	if err != nil {
		fail(fmt.Errorf("report artifact %s: %w", match[0].Short(), err))
	}
	var r snowboard.Report
	if err := json.Unmarshal(payload, &r); err != nil {
		fail(fmt.Errorf("report artifact %s: %w: %v", match[0].Short(), store.ErrCorrupt, err))
	}

	var recIDs []int
	for _, id := range r.BugIDs() {
		if r.Issues[id].Repro == nil {
			obs.Diag.Printf("issue #%d has no recorded replayable trial; skipping", id)
			continue
		}
		recIDs = append(recIDs, id)
	}
	if len(recIDs) == 0 {
		fmt.Printf("report %s: no replayable findings\n", match[0].Short())
		return exitStaleReplay
	}

	type replayOut struct {
		text  string
		stale bool
	}
	outs := par.Map(par.Workers(workers), len(recIDs), func(_, i int) replayOut {
		rec := r.Issues[recIDs[i]]
		var sb strings.Builder
		fmt.Fprintf(&sb, "replaying report %s issue #%d (kernel %s)\n", match[0].Short(), recIDs[i], r.Version)
		stale, _ := replayState(&sb, r.Version, rec.Test, rec.Repro, quiet)
		if t := rec.Triage; t != nil {
			fmt.Fprintf(&sb, "minimized: signature %s, bundle %s (replay with -min)\n", t.Signature, t.Bundle)
		}
		return replayOut{text: sb.String(), stale: stale}
	})
	exit := exitOK
	for i, out := range outs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(out.text)
		if out.stale {
			obs.Diag.Printf("warning: replay of issue #%d surfaced no harmful finding — stored trial may be stale", recIDs[i])
			exit = exitStaleReplay
		}
	}
	return exit
}
