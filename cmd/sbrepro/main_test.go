package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run %s %v: %v", bin, args, err)
		}
	}
	return stdout.String(), stderr.String(), err
}

func TestSbreproUsage(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/sbrepro")
	stdout, stderr, _ := runTool(t, bin, "-h")
	if !strings.Contains(stderr, "-bundle") || !strings.Contains(stderr, "-state") {
		t.Fatalf("usage text missing flags:\n%s", stderr)
	}
	if stdout != "" {
		t.Fatalf("usage leaked to stdout:\n%s", stdout)
	}
}

// TestSbreproListsStoredReports is the end-to-end smoke: a tiny snowboard
// pipeline run persists its report into an artifact store, and sbrepro
// pointed at the same store must exit 0 and list that report's digest.
func TestSbreproListsStoredReports(t *testing.T) {
	pipeline := buildTool(t, "snowboard/cmd/snowboard")
	repro := buildTool(t, "snowboard/cmd/sbrepro")
	state := t.TempDir()

	_, stderr, err := runTool(t, pipeline,
		"-seed", "1", "-fuzz", "30", "-corpus", "10", "-tests", "4", "-trials", "2",
		"-state", state, "-json", "-progress", "0")
	if err != nil {
		t.Fatalf("pipeline exit error: %v\nstderr:\n%s", err, stderr)
	}

	stdout, stderr, err := runTool(t, repro, "-state", state)
	if err != nil {
		t.Fatalf("sbrepro exit error: %v\nstderr:\n%s\nstdout:\n%s", err, stderr, stdout)
	}
	if !strings.Contains(stdout, "report artifacts in "+state) {
		t.Fatalf("stored report listing missing:\n%s", stdout)
	}
	// At least one digest line follows the header.
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[1]) == "" {
		t.Fatalf("no report digest listed:\n%s", stdout)
	}
}
