package main

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/triage"
)

func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run %s %v: %v", bin, args, err)
		}
	}
	return stdout.String(), stderr.String(), err
}

func TestSbreproUsage(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/sbrepro")
	stdout, stderr, _ := runTool(t, bin, "-h")
	if !strings.Contains(stderr, "-bundle") || !strings.Contains(stderr, "-state") {
		t.Fatalf("usage text missing flags:\n%s", stderr)
	}
	if stdout != "" {
		t.Fatalf("usage leaked to stdout:\n%s", stdout)
	}
}

// TestSbreproListsStoredReports is the end-to-end smoke: a tiny snowboard
// pipeline run persists its report into an artifact store, and sbrepro
// pointed at the same store must exit 0 and list that report's digest.
func TestSbreproListsStoredReports(t *testing.T) {
	pipeline := buildTool(t, "snowboard/cmd/snowboard")
	repro := buildTool(t, "snowboard/cmd/sbrepro")
	state := t.TempDir()

	_, stderr, err := runTool(t, pipeline,
		"-seed", "1", "-fuzz", "30", "-corpus", "10", "-tests", "4", "-trials", "2",
		"-state", state, "-json", "-progress", "0")
	if err != nil {
		t.Fatalf("pipeline exit error: %v\nstderr:\n%s", err, stderr)
	}

	stdout, stderr, err := runTool(t, repro, "-state", state)
	if err != nil {
		t.Fatalf("sbrepro exit error: %v\nstderr:\n%s\nstdout:\n%s", err, stderr, stdout)
	}
	if !strings.Contains(stdout, "report artifacts in "+state) {
		t.Fatalf("stored report listing missing:\n%s", stdout)
	}
	// At least one digest line follows the header.
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[1]) == "" {
		t.Fatalf("no report digest listed:\n%s", stdout)
	}
}

// TestClassifyExit pins the documented exit-code mapping: format-version
// mismatches are stale (3), undecodable artifacts are corrupt (4), and
// everything else — missing files, bad digests — is usage (2).
func TestClassifyExit(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"sched stale", fmt.Errorf("load: %w", sched.ErrBundleStale), exitStaleBundle},
		{"sched corrupt", fmt.Errorf("load: %w", sched.ErrBundleCorrupt), exitCorruptBundle},
		{"triage stale", fmt.Errorf("bundle: %w", triage.ErrStale), exitStaleBundle},
		{"triage corrupt", fmt.Errorf("bundle: %w", triage.ErrCorrupt), exitCorruptBundle},
		{"store corrupt", fmt.Errorf("get: %w", store.ErrCorrupt), exitCorruptBundle},
		{"missing file", fs.ErrNotExist, exitUsage},
		{"other", errors.New("boom"), exitUsage},
	}
	for _, tc := range cases {
		if got := classifyExit(tc.err); got != tc.want {
			t.Errorf("%s: classifyExit = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// writeFileBundle drops raw bytes where replayBundle will read them.
func writeFileBundle(t *testing.T, data string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReplayBundleStaleVsCorrupt drives the file-bundle path through each
// failure class and asserts the error classifies to the right exit code
// with distinguishable errors.Is identities.
func TestReplayBundleStaleVsCorrupt(t *testing.T) {
	cases := []struct {
		name     string
		data     string
		wantExit int
		wantIs   error
	}{
		{"garbage", "not json", exitCorruptBundle, sched.ErrBundleCorrupt},
		{"no format field", `{"version":"5.12-rc3"}`, exitStaleBundle, sched.ErrBundleStale},
		{"future format", `{"format":99,"version":"5.12-rc3"}`, exitStaleBundle, sched.ErrBundleStale},
		{"right format, invalid body", `{"format":1}`, exitCorruptBundle, sched.ErrBundleCorrupt},
	}
	for _, tc := range cases {
		var sb strings.Builder
		_, err := replayBundle(&sb, writeFileBundle(t, tc.data), true)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !errors.Is(err, tc.wantIs) {
			t.Errorf("%s: error %v is not %v", tc.name, err, tc.wantIs)
		}
		if got := classifyExit(err); got != tc.wantExit {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.wantExit)
		}
	}
	// A missing file is a usage error, not a corrupt bundle.
	var sb strings.Builder
	_, err := replayBundle(&sb, filepath.Join(t.TempDir(), "nope.json"), true)
	if err == nil || classifyExit(err) != exitUsage {
		t.Fatalf("missing file: err=%v exit=%d, want usage", err, classifyExit(err))
	}
}

// TestLoadMinBundleStaleVsCorrupt covers the -min store path: SBRB bundles
// written under other format versions are stale; damaged payloads are
// corrupt. (The artifacts are planted directly in the store, bypassing
// triage.SaveBundle's validation, exactly like an old or damaged fleet
// member would leave them.)
func TestLoadMinBundleStaleVsCorrupt(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put := func(data string) store.Digest {
		d, err := s.Put(store.KindRepro, []byte(data))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name   string
		data   string
		wantIs error
		exit   int
	}{
		{"garbage", "not a bundle", triage.ErrCorrupt, exitCorruptBundle},
		{"pre-format writer", `{"kernel":"5.12-rc3"}`, triage.ErrStale, exitStaleBundle},
		{"future format", `{"format":2}`, triage.ErrStale, exitStaleBundle},
		{"right format, invalid body", `{"format":1}`, triage.ErrCorrupt, exitCorruptBundle},
	}
	for _, tc := range cases {
		d := put(tc.data)
		_, err := triage.LoadBundle(s, d)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !errors.Is(err, tc.wantIs) {
			t.Errorf("%s: error %v is not %v", tc.name, err, tc.wantIs)
		}
		if got := classifyExit(err); got != tc.exit {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.exit)
		}
	}
}

// TestReplayMinUsagePaths: no match and ambiguous digest prefixes are
// usage errors (2), never reported as stale or corrupt.
func TestReplayMinUsagePaths(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if replayMin(dir, "deadbeef", true) != exitUsage {
		t.Fatal("no-match prefix should be a usage error")
	}
	d1, err := s.Put(store.KindRepro, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Put(store.KindRepro, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	common := ""
	for i := 0; i < len(d1.String()); i++ {
		if d1.String()[i] != d2.String()[i] {
			break
		}
		common = d1.String()[:i+1]
	}
	if common == "" {
		t.Skip("digests share no common prefix to make ambiguous")
	}
	if replayMin(dir, common, true) != exitUsage {
		t.Fatal("ambiguous prefix should be a usage error")
	}
}
