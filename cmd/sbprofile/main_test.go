package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run %s %v: %v", bin, args, err)
		}
	}
	return stdout.String(), stderr.String(), err
}

func TestSbprofileUsage(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/sbprofile")
	stdout, stderr, _ := runTool(t, bin, "-h")
	if !strings.Contains(stderr, "-fuzz") || !strings.Contains(stderr, "-corpus") {
		t.Fatalf("usage text missing flags:\n%s", stderr)
	}
	if stdout != "" {
		t.Fatalf("usage leaked to stdout:\n%s", stdout)
	}
}

// TestSbprofileStats is the end-to-end smoke: a tiny profiling run must
// exit 0 and print the corpus/PMC statistics on stdout with no diagnostic
// chatter mixed in.
func TestSbprofileStats(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/sbprofile")
	stdout, stderr, err := runTool(t, bin,
		"-seed", "1", "-fuzz", "30", "-corpus", "10", "-top", "3", "-progress", "0")
	if err != nil {
		t.Fatalf("exit error: %v\nstderr:\n%s", err, stderr)
	}
	for _, want := range []string{"corpus:", "profiling:", "PMCs:", "Strategy"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "sbprofile:") {
		t.Fatalf("diagnostic chatter leaked to stdout:\n%s", stdout)
	}
}
