// Command sbprofile runs the first two Snowboard stages standalone: it
// builds (or loads) a sequential corpus, profiles every test from the boot
// snapshot, identifies PMCs, and prints profiling and clustering
// statistics — useful for inspecting what the analysis sees before
// spending execution budget.
//
// Usage:
//
//	sbprofile [-version 5.12-rc3] [-seed 1] [-fuzz 400] [-corpus 120]
//	          [-workers 0] [-state dir] [-stream] [-top 10] [-dump-tests]
//	          [-http :0] [-progress 10s]
//
// With -stream, the three stages run as one streaming campaign: each fuzz
// round's newly admitted programs are profiled and identified incrementally
// while the next round fuzzes, producing the same corpus, profiles, and PMC
// set as the staged path.
//
// With -state, the corpus, profile-set, and PMC-set artifacts are persisted
// into the content-addressed store rooted there and their digests printed,
// so snowboard/sbqueue/sbexec runs pointed at the same -state resume from
// them instead of re-fuzzing and re-profiling.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"snowboard"
	"snowboard/internal/cluster"
	"snowboard/internal/obs"
)

func main() {
	var (
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		fuzzN    = flag.Int("fuzz", 400, "sequential fuzzing executions")
		corpusN  = flag.Int("corpus", 120, "corpus size cap")
		workers  = flag.Int("workers", 0, "parallel worker goroutines per stage (0 = one per CPU)")
		stateDir = flag.String("state", "", "artifact store directory: persist corpus/profile/PMC artifacts and resume from them")
		stream   = flag.Bool("stream", false, "streaming mode: profile and identify each fuzz round's programs as they are admitted, instead of running the three stages back to back")
		top      = flag.Int("top", 10, "hottest channels to print")
		dump     = flag.Bool("dump-tests", false, "print every corpus program")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /events, /coverage, /campaign, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
	)
	flag.Parse()
	obs.Diag.SetPrefix("sbprofile")

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		obs.Diag.Printf("introspection listening on http://%s", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, obs.Diag)
	defer stopProgress()
	stopSampler := obs.StartSampler(time.Second)
	defer stopSampler()

	opts := snowboard.DefaultOptions()
	opts.Version = snowboard.Version(*version)
	opts.Seed = *seed
	opts.FuzzBudget = *fuzzN
	opts.CorpusCap = *corpusN
	opts.Workers = *workers

	p := snowboard.NewPipeline(opts)
	if *stateDir != "" {
		st, err := snowboard.OpenStore(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		p.UseStore(st)
	}
	r := p.NewReport()
	if *stream {
		if err := p.StreamCampaign(r); err != nil {
			log.Fatal(err)
		}
	} else {
		p.BuildCorpus(r)
		if err := p.ProfileAll(r); err != nil {
			log.Fatal(err)
		}
		p.IdentifyPMCs(r)
	}

	fmt.Printf("kernel %s, seed %d\n", opts.Version, opts.Seed)
	fmt.Printf("corpus: %d tests selected from %d executions\n", r.CorpusSize, r.FuzzExecutions)
	fmt.Printf("syscall histogram: %v\n", p.Corpus.SyscallHistogram())
	fmt.Printf("profiling: %d shared accesses in %v (%.0f accesses/test)\n",
		r.ProfiledAccesses, r.ProfileTime, float64(r.ProfiledAccesses)/float64(r.CorpusSize))
	fmt.Printf("PMCs: %d distinct keys, %d combinations, identified in %v\n",
		r.DistinctPMCs, r.PMCCombinations, r.IdentifyTime)
	if *stateDir != "" {
		corpusD, profilesD, pmcsD := p.ArtifactDigests()
		fmt.Printf("artifacts (state %s):\n", *stateDir)
		fmt.Printf("  corpus   %s\n", corpusD)
		fmt.Printf("  profiles %s\n", profilesD)
		fmt.Printf("  pmcs     %s\n", pmcsD)
	}
	fmt.Println()

	fmt.Printf("%-16s %9s\n", "Strategy", "Clusters")
	for _, s := range snowboard.Strategies() {
		cs := cluster.Clusters(p.PMCs, s)
		fmt.Printf("%-16s %9d\n", s.Name, len(cs))
	}

	// Hottest channels by pair combinations under S-CH.
	cs := cluster.Clusters(p.PMCs, cluster.SCh)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Weight > cs[j].Weight })
	fmt.Printf("\nhottest %d channels (S-CH clusters by combination count):\n", *top)
	for i := 0; i < *top && i < len(cs); i++ {
		c := cs[i]
		fmt.Printf("  %8d  %s -> %s\n", c.Weight, c.PMCs[0].Write.Ins.Name(), c.PMCs[0].Read.Ins.Name())
	}

	if *dump {
		fmt.Println("\ncorpus programs:")
		for i, prog := range p.Corpus.Progs {
			fmt.Printf("--- test %d ---\n%s", i, prog)
		}
	}
}
