// Command sbqueue is the coordinator of a distributed Snowboard run
// (§4.4.1's lightweight distributed queue): it builds the corpus, profiles
// it, identifies and clusters PMCs, enqueues the generated concurrent
// tests on a TCP queue, and aggregates results reported by sbexec workers.
//
// Usage:
//
//	sbqueue [-addr 127.0.0.1:7070] [-version 5.12-rc3] [-method S-INS-PAIR]
//	        [-seed 1] [-fuzz 400] [-corpus 120] [-tests 200] [-workers 0]
//	        [-state dir] [-wait 30s] [-http :8080] [-progress 10s]
//
// With -state, the local stages resume from the content-addressed artifact
// store rooted there, and jobs go on the wire *by reference* — a corpus
// digest plus two pair indices instead of two inline programs — so workers
// started with the same -state (a shared directory) resolve programs from
// the store and the wire format stays a few dozen bytes per job.
//
// Operational chatter goes to stderr; only the final summary is written to
// stdout. With -http, the live introspection server exposes the queue's
// per-op counters, depth, and in-flight connections alongside the pipeline
// metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"snowboard"
	"snowboard/internal/obs"
	"snowboard/internal/queue"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version")
		method   = flag.String("method", "S-INS-PAIR", "generation method")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		fuzzN    = flag.Int("fuzz", 400, "sequential fuzzing executions")
		corpusN  = flag.Int("corpus", 120, "corpus size cap")
		tests    = flag.Int("tests", 200, "concurrent tests to enqueue")
		workers  = flag.Int("workers", 0, "parallel worker goroutines for the local stages (0 = one per CPU)")
		stateDir = flag.String("state", "", "artifact store directory: resume local stages from it and enqueue jobs by corpus digest")
		wait     = flag.Duration("wait", 30*time.Second, "how long to wait for workers after the queue drains")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
	)
	flag.Parse()
	diag := obs.Diag
	diag.SetPrefix("sbqueue")

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		diag.Printf("introspection listening on http://%s", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	opts := snowboard.DefaultOptions()
	opts.Version = snowboard.Version(*version)
	opts.Seed = *seed
	opts.FuzzBudget = *fuzzN
	opts.CorpusCap = *corpusN
	opts.Workers = *workers
	m, ok := snowboard.MethodByName(*method)
	if !ok {
		log.Fatalf("unknown method %q", *method)
	}
	opts.Method = m

	p := snowboard.NewPipeline(opts)
	if *stateDir != "" {
		st, err := snowboard.OpenStore(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		p.UseStore(st)
	}
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		log.Fatal(err)
	}
	p.IdentifyPMCs(r)
	cts := p.GenerateTests(r, *tests)
	diag.Printf("corpus=%d pmcs=%d generated=%d concurrent tests", r.CorpusSize, r.DistinctPMCs, len(cts))

	// With a store attached, jobs reference the persisted corpus artifact by
	// digest instead of inlining both programs.
	corpusDigest := ""
	if *stateDir != "" {
		corpusDigest, _, _ = p.ArtifactDigests()
		if corpusDigest == "" {
			diag.Printf("warning: corpus artifact not persisted; falling back to inline jobs")
		} else {
			diag.Printf("jobs reference corpus artifact %.12s…; workers need -state %s", corpusDigest, *stateDir)
		}
	}

	q := queue.New()
	srv, err := queue.Serve(q, *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hint := ""
	if corpusDigest != "" {
		hint = " -state " + *stateDir
	}
	diag.Printf("queue listening on %s — start workers with: sbexec -addr %s -version %s%s",
		srv.Addr(), srv.Addr(), *version, hint)

	for i, ct := range cts {
		job := queue.Job{ID: i, Hint: ct.Hint, Pair: ct.Pair}
		if corpusDigest != "" {
			job.Corpus = corpusDigest
		} else {
			job.Writer, job.Reader = ct.Writer, ct.Reader
		}
		if err := q.Push(job); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for the queue to drain, then give workers time to report.
	for q.Len() > 0 {
		time.Sleep(200 * time.Millisecond)
	}
	deadline := time.Now().Add(*wait)
	done := make(map[int]bool)
	found := make(map[int]bool)
	exercised := 0
	for time.Now().Before(deadline) && len(done) < len(cts) {
		for _, res := range q.Results() {
			done[res.JobID] = true
			if res.Exercised {
				exercised++
			}
			for _, id := range res.BugIDs {
				found[id] = true
			}
		}
		time.Sleep(200 * time.Millisecond)
	}

	fmt.Printf("%d/%d jobs reported, %d exercised their PMC channel\n", len(done), len(cts), exercised)
	ids := make([]int, 0, len(found))
	for id := range found {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("issues found (Table 2 numbers): %v\n", ids)
	if len(done) < len(cts) {
		diag.Printf("warning: some jobs never reported; workers may still be running")
	}
}
