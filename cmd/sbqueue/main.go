// Command sbqueue is the coordinator of a distributed Snowboard run
// (§4.4.1's lightweight distributed queue): it builds the corpus, profiles
// it, identifies and clusters PMCs, enqueues the generated concurrent
// tests on a TCP queue, and aggregates results reported by sbexec workers.
//
// Usage:
//
//	sbqueue [-addr 127.0.0.1:7070] [-version 5.12-rc3] [-method S-INS-PAIR]
//	        [-seed 1] [-fuzz 400] [-corpus 120] [-tests 200] [-workers 0]
//	        [-state dir] [-lease 30s] [-retries 3] [-wait 30s]
//	        [-http :8080] [-progress 10s] [-watch]
//
// Jobs are delivered at-least-once: a worker leases a job for -lease and
// acks it after reporting; a crashed or preempted worker's lease expires
// and the job is redelivered (up to -retries attempts) instead of being
// silently lost. Jobs that exhaust their attempts land on the dead-letter
// list, which is dumped with the final summary — a poisoned job can
// neither vanish nor retry forever. Redelivered jobs are folded into the
// results exactly once (worker seeds derive from the job ID, so duplicate
// reports are byte-identical).
//
// With -state, the local stages resume from the content-addressed artifact
// store rooted there, and jobs go on the wire *by reference* — a corpus
// digest plus two pair indices instead of two inline programs — so workers
// started with the same -state (a shared directory) resolve programs from
// the store and the wire format stays a few dozen bytes per job.
//
// Operational chatter goes to stderr; only the final summary is written to
// stdout. With -http, the live introspection server exposes the queue's
// per-op counters and latency histograms, depth, flight-recorder events
// (/events), and the campaign coverage time-series (/coverage) alongside
// the pipeline metrics. With -watch, a live terminal dashboard on stderr
// shows queue state, lease ages, exec throughput and latency percentiles,
// coverage growth, and the tail of the flight recorder.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"snowboard"
	"snowboard/internal/obs"
	"snowboard/internal/queue"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version")
		method   = flag.String("method", "S-INS-PAIR", "generation method")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		fuzzN    = flag.Int("fuzz", 400, "sequential fuzzing executions")
		corpusN  = flag.Int("corpus", 120, "corpus size cap")
		tests    = flag.Int("tests", 200, "concurrent tests to enqueue")
		workers  = flag.Int("workers", 0, "parallel worker goroutines for the local stages (0 = one per CPU)")
		stateDir = flag.String("state", "", "artifact store directory: resume local stages from it and enqueue jobs by corpus digest")
		lease    = flag.Duration("lease", 30*time.Second, "worker lease timeout before an unacked job is redelivered")
		retries  = flag.Int("retries", 3, "delivery attempts per job before it is dead-lettered")
		wait     = flag.Duration("wait", 30*time.Second, "how long to wait for outstanding leases to settle after the queue drains")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /events, /coverage, /campaign, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
		watch    = flag.Bool("watch", false, "render a live terminal dashboard on stderr (suppresses -progress)")
	)
	flag.Parse()
	diag := obs.Diag
	diag.SetPrefix("sbqueue")
	if *watch {
		*progress = 0
	}
	stopSampler := obs.StartSampler(time.Second)
	defer stopSampler()

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		diag.Printf("introspection listening on http://%s", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	opts := snowboard.DefaultOptions()
	opts.Version = snowboard.Version(*version)
	opts.Seed = *seed
	opts.FuzzBudget = *fuzzN
	opts.CorpusCap = *corpusN
	opts.Workers = *workers
	m, ok := snowboard.MethodByName(*method)
	if !ok {
		log.Fatalf("unknown method %q", *method)
	}
	opts.Method = m

	p := snowboard.NewPipeline(opts)
	if *stateDir != "" {
		st, err := snowboard.OpenStore(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		p.UseStore(st)
	}
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		log.Fatal(err)
	}
	p.IdentifyPMCs(r)
	cts := p.GenerateTests(r, *tests)
	diag.Printf("corpus=%d pmcs=%d generated=%d concurrent tests", r.CorpusSize, r.DistinctPMCs, len(cts))

	// With a store attached, jobs reference the persisted corpus artifact by
	// digest instead of inlining both programs.
	corpusDigest := ""
	if *stateDir != "" {
		corpusDigest, _, _ = p.ArtifactDigests()
		if corpusDigest == "" {
			diag.Printf("warning: corpus artifact not persisted; falling back to inline jobs")
		} else {
			diag.Printf("jobs reference corpus artifact %.12s…; workers need -state %s", corpusDigest, *stateDir)
		}
	}

	q := queue.NewWithOptions(queue.Options{
		Name:         "coordinator",
		LeaseTimeout: *lease,
		MaxAttempts:  *retries,
	})
	srv, err := queue.Serve(q, *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hint := ""
	if corpusDigest != "" {
		hint = " -state " + *stateDir
	}
	diag.Printf("queue listening on %s — start workers with: sbexec -addr %s -version %s%s",
		srv.Addr(), srv.Addr(), *version, hint)

	stopWatch := func() {}
	if *watch {
		stopWatch = startWatch(q)
	}

	for i, ct := range cts {
		// Every job carries the campaign trace, so worker spans and the
		// queue's delivery events stitch back to this run end-to-end.
		job := queue.Job{ID: i, Hint: ct.Hint, Pair: ct.Pair, Trace: obs.CurrentTrace()}
		if corpusDigest != "" {
			job.Corpus = corpusDigest
		} else {
			job.Writer, job.Reader = ct.Writer, ct.Reader
		}
		if err := q.Push(job); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for every job to settle: acked or dead-lettered. Pending jobs
	// wait indefinitely (workers may not have started yet); the lease
	// reaper turns abandoned leases back into pending jobs automatically,
	// so once the pending list is empty, stragglers get *wait to settle
	// (covering a worker that extends a lease forever) before we report
	// with what we have.
	var settleBy time.Time
	for {
		st := q.Stats()
		if st.Pending == 0 && st.Leased == 0 {
			break
		}
		if st.Pending == 0 {
			if settleBy.IsZero() {
				settleBy = time.Now().Add(*wait)
			} else if time.Now().After(settleBy) {
				diag.Printf("warning: %d leases never settled within %v; reporting anyway", st.Leased, *wait)
				break
			}
		} else {
			settleBy = time.Time{}
		}
		time.Sleep(200 * time.Millisecond)
	}

	stopWatch()

	// Fold worker results exactly once per job (redelivered duplicates are
	// byte-identical and discarded) and surface the dead-letter list.
	st := q.Stats()
	sum := snowboard.AggregateResults(len(cts), q.Results(), q.DeadLetters())
	r.Distributed = &sum

	fmt.Printf("%d/%d jobs reported (%d redeliveries, %d duplicate reports folded), %d exercised their PMC channel\n",
		sum.Reported, sum.Expected, st.Redelivered, sum.Duplicates, sum.Exercised)
	fmt.Printf("issues found (Table 2 numbers): %v\n", sum.BugIDs)
	if len(sum.DeadJobs) > 0 {
		fmt.Printf("dead-lettered jobs after %d attempts: %v\n", *retries, sum.DeadJobs)
		for _, d := range q.DeadLetters() {
			diag.Printf("dead job %d (%d attempts): %s", d.Job.ID, d.Attempts, d.Reason)
		}
	}
	if sum.Lost() {
		diag.Printf("warning: jobs neither reported nor dead-lettered: %v", sum.Missing)
	}
}

// isTerminal reports whether f is attached to a character device (a real
// terminal), as opposed to a pipe or a redirected file.
func isTerminal(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// startWatch renders the live dashboard to stderr once per second until the
// returned stop function is called. On a real terminal each frame repaints
// in place with ANSI cursor-home/clear-screen; when stderr is a pipe or a
// log file, frames degrade to plain appending lines instead of spraying
// escape bytes into the capture.
func startWatch(q *queue.Queue) (stop func()) {
	ansi := isTerminal(os.Stderr)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprint(os.Stderr, renderWatch(q, ansi))
			}
		}
	}()
	return func() { close(done) }
}

// renderWatch builds one dashboard frame. With ansi, the frame is the
// full-screen dashboard prefixed by cursor-home + clear-screen so it
// repaints in place; without, it is a single appending status line safe
// for pipes and log files.
func renderWatch(q *queue.Queue, ansi bool) string {
	if !ansi {
		return renderWatchLine(q)
	}
	st := q.Stats()
	pr := obs.ProgressNow()
	cov := obs.CoverageNow()
	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // cursor home + clear screen
	trace := "-"
	if c := obs.CurrentCampaign(); c != nil {
		trace = c.Trace
	}
	fmt.Fprintf(&b, "snowboard campaign %s  up %.0fs\n", trace, pr.UptimeSec)
	fmt.Fprintf(&b, "queue   pending=%d leased=%d done=%d dead=%d redelivered=%d oldest-lease=%s\n",
		st.Pending, st.Leased, st.Done, st.DeadLettered, st.Redelivered,
		st.OldestLease.Truncate(time.Millisecond))
	fmt.Fprintf(&b, "exec    %.1f tests/min  p50=%.2fms  p99=%.2fms  trials=%d  exercised=%d\n",
		pr.ExecPerMin, pr.ExecP50Ms, pr.ExecP99Ms, pr.TrialsRun, pr.TestsExercised)
	var pairs, segments int64
	if n := len(cov.Samples); n > 0 {
		pairs = cov.Samples[n-1].CoverPairs
		segments = cov.Samples[n-1].CoverSegments
	}
	fmt.Fprintf(&b, "cover   pairs=%d  segs=%d  +%.1f pairs/min  +%.1f segs/min  +%.1f edges/min  plateaued=%t\n",
		pairs, segments, cov.Rate.NewPairsPerMin, cov.Rate.NewSegmentsPerMin, cov.Rate.NewEdgesPerMin, cov.Plateaued)
	fmt.Fprintf(&b, "issues  %d found  %d detect reports\n", pr.IssuesFound, pr.DetectReports)
	evs := obs.Events.Since(0)
	minimized, lastBundle := 0, ""
	for _, ev := range evs {
		if ev.Kind == obs.EvTriageMinimized {
			minimized++
			if s, ok := ev.Attrs["bundle"].(string); ok {
				lastBundle = s
			}
		}
	}
	if minimized > 0 {
		fmt.Fprintf(&b, "triage  %d minimized  last bundle %s\n", minimized, lastBundle)
	}
	if n := len(evs); n > 6 {
		evs = evs[n-6:]
	}
	b.WriteString("events\n")
	for _, ev := range evs {
		fmt.Fprintf(&b, "  #%-5d %s  %s\n", ev.Seq, ev.T.Format("15:04:05"), ev.Kind)
	}
	return b.String()
}

// renderWatchLine is the non-TTY dashboard frame: the same vitals
// compressed into one plain line that appends cleanly to a pipe or file.
func renderWatchLine(q *queue.Queue) string {
	st := q.Stats()
	pr := obs.ProgressNow()
	cov := obs.CoverageNow()
	var pairs, segments int64
	if n := len(cov.Samples); n > 0 {
		pairs = cov.Samples[n-1].CoverPairs
		segments = cov.Samples[n-1].CoverSegments
	}
	return fmt.Sprintf("watch pending=%d leased=%d done=%d dead=%d exec=%.1f/min pairs=%d segs=%d issues=%d\n",
		st.Pending, st.Leased, st.Done, st.DeadLettered, pr.ExecPerMin, pairs, segments, pr.IssuesFound)
}
