package main

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"snowboard/internal/queue"
)

func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestSbqueueUsage(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/sbqueue")
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-h")
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatal(err)
		}
	}
	if !strings.Contains(stderr.String(), "-lease") || !strings.Contains(stderr.String(), "-addr") {
		t.Fatalf("usage text missing flags:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("usage leaked to stdout:\n%s", stdout.String())
	}
}

func watchQueue(t *testing.T) *queue.Queue {
	t.Helper()
	q := queue.NewWithOptions(queue.Options{Name: "watch-test"})
	t.Cleanup(q.Close)
	if err := q.Push(queue.Job{ID: 1}); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRenderWatchTTYUsesANSI(t *testing.T) {
	q := watchQueue(t)
	frame := renderWatch(q, true)
	if !strings.HasPrefix(frame, "\x1b[H\x1b[2J") {
		t.Fatal("TTY frame does not repaint in place (missing cursor-home + clear-screen prefix)")
	}
	if !strings.Contains(frame, "pending=1") {
		t.Fatalf("TTY frame missing queue state:\n%s", frame)
	}
}

func TestRenderWatchNonTTYIsPlain(t *testing.T) {
	// Captured to a pipe or a log file, the dashboard must degrade to a
	// plain appending line: no escape bytes, one newline-terminated line
	// per frame.
	q := watchQueue(t)
	frame := renderWatch(q, false)
	if strings.ContainsRune(frame, '\x1b') {
		t.Fatalf("non-TTY frame contains ANSI escapes: %q", frame)
	}
	if !strings.HasSuffix(frame, "\n") || strings.Count(frame, "\n") != 1 {
		t.Fatalf("non-TTY frame is not a single appending line: %q", frame)
	}
	if !strings.Contains(frame, "pending=1") {
		t.Fatalf("non-TTY frame missing queue state: %q", frame)
	}
}

func TestIsTerminalOnPipe(t *testing.T) {
	// Test processes run with redirected stdio; both ends of a pipe are
	// definitively not character devices — the watch dashboard must pick
	// plain mode for them.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	if isTerminal(r) || isTerminal(w) {
		t.Fatal("isTerminal reported a pipe as a terminal")
	}
}

var listenRE = regexp.MustCompile(`queue listening on ([0-9.]+:[0-9]+)`)

// startCoordinator launches the coordinator on an ephemeral port and
// returns the running command, its address, and its stdout buffer.
func startCoordinator(t *testing.T, bin string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-seed", "1", "-fuzz", "20", "-corpus", "8",
		"-tests", "3", "-lease", "10s", "-wait", "5s", "-progress", "0")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, &stdout
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("coordinator never announced its listen address")
		return nil, "", nil
	}
}

// TestSbqueueDrainsWithWorker is the end-to-end smoke: the coordinator
// enqueues a tiny batch, one worker drains it, and the coordinator exits 0
// with a machine-readable summary on stdout.
func TestSbqueueDrainsWithWorker(t *testing.T) {
	coord := buildTool(t, "snowboard/cmd/sbqueue")
	worker := buildTool(t, "snowboard/cmd/sbexec")

	cmd, addr, stdout := startCoordinator(t, coord)
	defer cmd.Process.Kill()

	var wOut, wErr bytes.Buffer
	wcmd := exec.Command(worker,
		"-addr", addr, "-trials", "2", "-workers", "1", "-idle-exit", "2s", "-progress", "0")
	wcmd.Stdout, wcmd.Stderr = &wOut, &wErr
	if err := wcmd.Run(); err != nil {
		t.Fatalf("worker exit error: %v\nstderr:\n%s", err, wErr.String())
	}
	if wOut.Len() != 0 {
		t.Fatalf("worker chatter leaked to stdout:\n%s", wOut.String())
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exit error: %v\nstdout:\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "3/3 jobs reported") {
		t.Fatalf("summary missing job accounting:\n%s", out)
	}
	if !strings.Contains(out, "issues found") {
		t.Fatalf("summary missing issue list:\n%s", out)
	}
}
