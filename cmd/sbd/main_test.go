package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snowboard/internal/core"
	"snowboard/internal/obs"
	"snowboard/internal/queue"
)

// testSpec is a campaign small enough to run many of concurrently.
func testSpec(name string, seed int64) core.CampaignSpec {
	return core.CampaignSpec{
		Name:       name,
		Seed:       seed,
		FuzzBudget: 60,
		CorpusCap:  20,
		TestBudget: 6,
		Trials:     4,
		Workers:    2,
	}
}

// newTestPlane builds a full control plane — registry, TCP queue
// listener, fair scheduler, HTTP server — returning the server handle,
// its HTTP base URL, and a cleanup-registered teardown.
func newTestPlane(t *testing.T, env core.CampaignEnv) (*server, string) {
	t.Helper()
	if env.Registry == nil {
		env.Registry = queue.NewRegistry(queue.Options{})
	}
	t.Cleanup(env.Registry.Close)
	if env.Addr == "" {
		qsrv, err := queue.ServeRegistry(env.Registry, "127.0.0.1:0", queue.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(qsrv.Close)
		env.Addr = qsrv.Addr()
	}
	s := newServer(env)
	hs := httptest.NewServer(s.handler())
	t.Cleanup(hs.Close)
	return s, hs.URL
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp.StatusCode
}

// detailWire keeps the report as raw bytes so restart tests can compare
// it byte-for-byte.
type detailWire struct {
	Status core.CampaignStatus `json:"status"`
	Report json.RawMessage     `json:"report"`
}

func TestControlPlaneHTTP(t *testing.T) {
	s, base := newTestPlane(t, core.CampaignEnv{Turns: core.NewTurnScheduler(2)})

	// Submit: 201 on first, 200 (same ID) on idempotent resubmission.
	spec := testSpec("http", 11)
	code, body := postJSON(t, base+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("first submit: status %d (%s)", code, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Trace == "" {
		t.Fatalf("submit reply incomplete: %+v", sub)
	}
	code, body = postJSON(t, base+"/campaigns", spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	var again submitResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != sub.ID {
		t.Fatalf("resubmission created a new campaign: %s vs %s", again.ID, sub.ID)
	}

	// Bad specs are rejected, not half-started.
	if code, _ := postJSON(t, base+"/campaigns", core.CampaignSpec{Method: "NOPE"}); code != http.StatusBadRequest {
		t.Fatalf("bad method: status %d, want 400", code)
	}

	// Pause stalls the executed counter; resume lets it finish.
	if code, _ := postJSON(t, base+"/campaigns/"+sub.ID+"/pause", struct{}{}); code != http.StatusOK {
		t.Fatalf("pause: status %d", code)
	}
	if code, _ := postJSON(t, base+"/campaigns/"+sub.ID+"/resume", struct{}{}); code != http.StatusOK {
		t.Fatalf("resume: status %d", code)
	}
	if _, err := s.get(sub.ID).Wait(); err != nil {
		t.Fatal(err)
	}

	// Listing and detail.
	var list []core.CampaignStatus
	if code := getJSON(t, base+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != 1 || list[0].ID != sub.ID || list[0].State != core.CampaignDone {
		t.Fatalf("list = %+v", list)
	}
	var detail detailWire
	if code := getJSON(t, base+"/campaigns/"+sub.ID, &detail); code != http.StatusOK {
		t.Fatalf("detail: status %d", code)
	}
	if len(detail.Report) == 0 {
		t.Fatal("done campaign served no report")
	}
	if detail.Status.Executed == 0 || detail.Status.Expected == 0 {
		t.Fatalf("detail status = %+v", detail.Status)
	}

	// Per-campaign events: every event carries this campaign's trace.
	var page obs.EventsPage
	if code := getJSON(t, base+"/campaigns/"+sub.ID+"/events", &page); code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	if len(page.Events) == 0 {
		t.Fatal("campaign recorded no events")
	}
	kinds := map[string]bool{}
	for _, ev := range page.Events {
		if ev.Trace != sub.Trace {
			t.Fatalf("foreign event in campaign stream: %+v", ev)
		}
		kinds[ev.Kind] = true
	}
	if !kinds[obs.EvCampaignStart] || !kinds[obs.EvCampaignDone] {
		t.Fatalf("campaign stream missing lifecycle events: %v", kinds)
	}
	resp, err := http.Get(base + "/campaigns/" + sub.ID + "/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d, want 400", resp.StatusCode)
	}

	// Unknown campaigns 404; the obs surface still serves underneath.
	if code := getJSON(t, base+"/campaigns/ffffffffffff", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d", code)
	}
	if code := getJSON(t, base+"/progress", nil); code != http.StatusOK {
		t.Fatalf("/progress under campaign mux: status %d", code)
	}
}

func TestChaosFleetFairAndLossless(t *testing.T) {
	// The acceptance gauntlet: 8 concurrent campaigns through one control
	// plane, every queue byte flowing through seeded FlakyConns (severs +
	// delays), plus injected worker crashes (abandoned leases). Nothing
	// may be lost or double-counted, and the fair scheduler must keep
	// per-campaign exec counters within 2x of each other at equal budgets.
	const fleet = 8
	reg := queue.NewRegistry(queue.Options{
		LeaseTimeout: 150 * time.Millisecond,
		MaxAttempts:  8,
	})
	gate := make(chan struct{})
	env := core.CampaignEnv{
		Registry: reg,
		Turns:    core.NewTurnScheduler(2),
		Slice:    2,
		Retries:  10,
		Dial:     queue.FlakyDialer(queue.FlakyOptions{Seed: 42, FailProb: 0.03, DelayProb: 0.1, MaxDelay: 3 * time.Millisecond}, nil),
		ExecGate: gate,
		Fault:    func(jobID, attempt int) bool { return attempt == 1 && jobID == 0 },
	}
	s, base := newTestPlane(t, env)

	ids := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		code, body := postJSON(t, base+"/campaigns", testSpec(fmt.Sprintf("chaos-%d", i), int64(100+i)))
		if code != http.StatusCreated {
			t.Fatalf("submit %d: status %d (%s)", i, code, body)
		}
		var sub submitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		ids[i] = sub.ID
	}

	// Open the barrier once every campaign has generated and pushed its
	// jobs, so the fairness sample measures campaigns that started
	// executing together.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		ready := 0
		for _, id := range ids {
			if s.get(id).Status().Expected > 0 {
				ready++
			}
		}
		if ready == fleet {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d campaigns reached the exec gate", ready, fleet)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)

	// Sample all exec counters the moment the first campaign completes.
	var sample []int64
	for sample == nil {
		for _, id := range ids {
			select {
			case <-s.get(id).Done():
				sample = make([]int64, fleet)
				for j, jid := range ids {
					sample[j] = s.get(jid).Executed()
				}
			default:
			}
			if sample != nil {
				break
			}
		}
		if sample == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}

	if err := s.waitAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		c := s.get(id)
		r, err := c.Wait()
		if err != nil {
			t.Fatalf("campaign %s: %v", id, err)
		}
		sum := r.Distributed
		if sum == nil {
			t.Fatalf("campaign %s has no distributed summary", id)
		}
		// Lossless: every job reported exactly once (redeliveries folded),
		// none missing, none dead-lettered.
		if sum.Reported != sum.Expected || sum.Lost() || len(sum.DeadJobs) != 0 {
			t.Fatalf("campaign %s lost work under chaos: %+v", id, sum)
		}
	}

	// Fairness: at the first completion every campaign had equal budgets,
	// so no counter may lag the leader by more than 2x.
	var min, max int64 = sample[0], sample[0]
	for _, n := range sample[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min*2 < max {
		t.Fatalf("unfair scheduling: exec counters %v (max %d > 2x min %d)", sample, max, min)
	}
}

// BenchmarkCampaignFleetThroughput measures control-plane scaling: N
// simultaneous campaigns with equal budgets through one queue listener
// and one fair scheduler. Reported exec/min is the aggregate across the
// fleet (EXPERIMENTS.md "Control plane" table).
func BenchmarkCampaignFleetThroughput(b *testing.B) {
	for _, fleet := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("campaigns=%d", fleet), func(b *testing.B) {
			var executed int64
			for i := 0; i < b.N; i++ {
				reg := queue.NewRegistry(queue.Options{})
				qsrv, err := queue.ServeRegistry(reg, "127.0.0.1:0", queue.ServerOptions{})
				if err != nil {
					b.Fatal(err)
				}
				s := newServer(core.CampaignEnv{
					Registry: reg,
					Addr:     qsrv.Addr(),
					Turns:    core.NewTurnScheduler(2),
					Slice:    4,
				})
				for j := 0; j < fleet; j++ {
					// Unique seeds per campaign and per iteration so no two
					// submissions collapse to the same manifest digest.
					spec := testSpec(fmt.Sprintf("bench-%d-%d", i, j), int64(1000+i*fleet+j))
					if _, _, err := s.submit(spec); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.waitAll(); err != nil {
					b.Fatal(err)
				}
				for _, st := range s.list() {
					executed += st.Executed
				}
				qsrv.Close()
				reg.Close()
			}
			mins := b.Elapsed().Minutes()
			if mins > 0 {
				b.ReportMetric(float64(executed)/mins, "exec/min")
			}
		})
	}
}

func TestRestartResumesByteIdentical(t *testing.T) {
	// A control plane killed and restarted on the same -state must resume
	// every submitted campaign and serve byte-identical reports. In-process
	// we model the kill by abandoning the first server (its goroutines
	// finish against its own registry) and booting a second one cold from
	// the persisted manifests; the CI sbd-smoke job does the real SIGKILL
	// mid-run.
	dir := t.TempDir()
	specs := []core.CampaignSpec{testSpec("restart-a", 21), testSpec("restart-b", 22)}

	sA, baseA := newTestPlane(t, core.CampaignEnv{StateDir: dir, Turns: core.NewTurnScheduler(2)})
	ids := make([]string, len(specs))
	for i, spec := range specs {
		code, body := postJSON(t, baseA+"/campaigns", spec)
		if code != http.StatusCreated {
			t.Fatalf("submit %d: status %d", i, code)
		}
		var sub submitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		ids[i] = sub.ID
	}
	if err := sA.waitAll(); err != nil {
		t.Fatal(err)
	}
	reportsA := make([]json.RawMessage, len(ids))
	for i, id := range ids {
		var d detailWire
		if code := getJSON(t, baseA+"/campaigns/"+id, &d); code != http.StatusOK {
			t.Fatalf("detail %s: status %d", id, code)
		}
		if len(d.Report) == 0 {
			t.Fatalf("campaign %s finished without a report", id)
		}
		reportsA[i] = d.Report
	}

	// "Restart": a brand-new server over the same state dir, no HTTP
	// resubmission — it must find both manifests on its own.
	sB, baseB := newTestPlane(t, core.CampaignEnv{StateDir: dir, Turns: core.NewTurnScheduler(2)})
	n, err := sB.resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(specs) {
		t.Fatalf("resume found %d campaigns, want %d", n, len(specs))
	}
	if err := sB.waitAll(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		var d detailWire
		if code := getJSON(t, baseB+"/campaigns/"+id, &d); code != http.StatusOK {
			t.Fatalf("restarted detail %s: status %d", id, code)
		}
		if !bytes.Equal(reportsA[i], d.Report) {
			t.Fatalf("campaign %s report changed across restart:\n%s\nvs\n%s", id, reportsA[i], d.Report)
		}
		// The memoized resume executed nothing.
		if st := sB.get(id).Status(); st.State != core.CampaignDone {
			t.Fatalf("resumed campaign %s state = %s", id, st.State)
		}
	}
	// Resumption is idempotent: resubmitting over HTTP joins, never forks.
	code, body := postJSON(t, baseB+"/campaigns", specs[0])
	if code != http.StatusOK {
		t.Fatalf("resubmit after resume: status %d", code)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(ids, " "), sub.ID) {
		t.Fatalf("resubmission forked campaign %s (known: %v)", sub.ID, ids)
	}
}
