// Command sbd is the Snowboard campaign control plane: a long-lived
// multi-tenant server that accepts campaign submissions over HTTP, runs
// each one through the full pipeline, shards its concurrent tests across
// a named per-campaign queue, and schedules execution fairly across every
// live campaign with a FIFO turn scheduler.
//
// Usage:
//
//	sbd [-http 127.0.0.1:8080] [-queue 127.0.0.1:0] [-state dir]
//	    [-slots 2] [-slice 4] [-lease 30s] [-retries 3] [-progress 10s]
//
// Submit a campaign by POSTing its spec as JSON:
//
//	curl -d '{"method":"S-INS-PAIR","seed":1,"test_budget":60}' \
//	     http://127.0.0.1:8080/campaigns
//
// The reply carries the campaign ID (the digest of its canonical
// manifest — resubmitting equivalent work joins the existing campaign
// instead of starting a duplicate) and its flight-recorder trace.
// Progress streams from:
//
//	GET  /campaigns               all campaigns, live counters
//	GET  /campaigns/<id>          one campaign + report once done
//	GET  /campaigns/<id>/events   per-campaign flight recorder (?since=N)
//	POST /campaigns/<id>/pause    stop at the next checkpoint
//	POST /campaigns/<id>/resume   continue
//
// plus the full obs introspection surface (/metrics, /progress, /events,
// /coverage, /debug/pprof/) for the whole process.
//
// With -state, every submission's manifest persists as a KindCampaign
// artifact and all pipeline stages memoize through the shared
// content-addressed store: a SIGKILLed and restarted sbd re-enumerates
// the manifests and resumes every in-flight campaign — completed ones
// land on their campaign-level report memo and return byte-identical
// reports without re-executing anything.
//
// The -queue listener serves every campaign's named queue on one TCP
// endpoint (protocol v2 with the "queue" request field); campaign
// executors lease their own jobs through it, and external sbexec workers
// can join a campaign with -addr <queue> and the campaign's queue name.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"snowboard/internal/core"
	"snowboard/internal/obs"
	"snowboard/internal/queue"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "control-plane HTTP listen address")
		qAddr    = flag.String("queue", "127.0.0.1:0", "multi-queue TCP listen address (serves every campaign's named queue)")
		stateDir = flag.String("state", "", "artifact store directory: persist manifests, memoize stages, resume campaigns on restart")
		slots    = flag.Int("slots", 2, "campaigns executing concurrently per scheduler turn")
		slice    = flag.Int("slice", 4, "jobs one campaign executes per fair-scheduler turn")
		lease    = flag.Duration("lease", 30*time.Second, "job lease timeout before an unacked job is redelivered")
		retries  = flag.Int("retries", 3, "delivery attempts per job before it is dead-lettered")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
	)
	flag.Parse()
	diag := obs.Diag
	diag.SetPrefix("sbd")
	stopSampler := obs.StartSampler(time.Second)
	defer stopSampler()
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	reg := queue.NewRegistry(queue.Options{LeaseTimeout: *lease, MaxAttempts: *retries})
	defer reg.Close()
	qsrv, err := queue.ServeRegistry(reg, *qAddr, queue.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer qsrv.Close()
	diag.Printf("campaign queues listening on %s", qsrv.Addr())

	s := newServer(core.CampaignEnv{
		StateDir: *stateDir,
		Registry: reg,
		Addr:     qsrv.Addr(),
		Turns:    core.NewTurnScheduler(*slots),
		Slice:    *slice,
	})
	if n, err := s.resume(); err != nil {
		log.Fatal(err)
	} else if n > 0 {
		diag.Printf("resumed %d campaign(s) from %s", n, *stateDir)
	}

	srv := &http.Server{Addr: *httpAddr, Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second}
	diag.Printf("control plane listening on http://%s", *httpAddr)
	log.Fatal(srv.ListenAndServe())
}
