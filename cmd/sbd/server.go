package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"snowboard/internal/core"
	"snowboard/internal/obs"
)

// server hosts the multi-tenant campaign set: submissions are idempotent
// by manifest digest, every campaign runs in the shared CampaignEnv, and
// the HTTP API layers campaign routes over the obs introspection handler.
type server struct {
	env core.CampaignEnv

	mu        sync.Mutex
	campaigns map[string]*core.Campaign
	order     []string // submission order, for stable listings
}

func newServer(env core.CampaignEnv) *server {
	return &server{env: env, campaigns: make(map[string]*core.Campaign)}
}

// submit starts (or joins) the campaign for spec. Submission is
// idempotent: the campaign ID is the manifest digest, so resubmitting
// byte-equivalent work returns the existing handle.
func (s *server) submit(spec core.CampaignSpec) (c *core.Campaign, created bool, err error) {
	id, err := spec.ID()
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.campaigns[id]; ok {
		return c, false, nil
	}
	c, err = core.StartCampaign(spec, s.env)
	if err != nil {
		return nil, false, err
	}
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	return c, true, nil
}

// resume re-submits every campaign manifest persisted under the state
// dir — called once at startup so a restarted server picks up all
// in-flight work. Completed campaigns land on their report memo and
// finish instantly; interrupted ones re-run from their stage memos.
func (s *server) resume() (int, error) {
	if s.env.StateDir == "" {
		return 0, nil
	}
	specs, err := core.LoadCampaignSpecs(s.env.StateDir)
	if err != nil {
		return 0, err
	}
	for _, spec := range specs {
		if _, _, err := s.submit(spec); err != nil {
			return 0, err
		}
	}
	return len(specs), nil
}

func (s *server) get(id string) *core.Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

func (s *server) list() []core.CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]core.CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id].Status())
	}
	return out
}

// submitResponse is the POST /campaigns reply.
type submitResponse struct {
	ID    string `json:"id"`
	Trace string `json:"trace"`
	State string `json:"state"`
}

// campaignDetail is the GET /campaigns/<id> reply: live status plus the
// full report once the campaign finishes.
type campaignDetail struct {
	Status core.CampaignStatus `json:"status"`
	Report *core.Report        `json:"report,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handler returns the control-plane mux: campaign routes first, the obs
// introspection surface (metrics, progress, process-wide events,
// coverage, pprof) for everything else.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaigns", s.handleCampaigns)
	mux.HandleFunc("/campaigns/", s.handleCampaign)
	mux.Handle("/", obs.Handler())
	return mux
}

func (s *server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.list())
	case http.MethodPost:
		var spec core.CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "bad campaign spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		c, created, err := s.submit(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, submitResponse{ID: c.ID, Trace: c.Trace, State: c.Status().State})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	c := s.get(id)
	if c == nil {
		http.Error(w, "unknown campaign "+id, http.StatusNotFound)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		detail := campaignDetail{Status: c.Status()}
		select {
		case <-c.Done():
			detail.Report = c.Report()
		default:
		}
		writeJSON(w, http.StatusOK, detail)
	case sub == "events" && r.Method == http.MethodGet:
		since := uint64(0)
		if q := r.URL.Query().Get("since"); q != "" {
			n, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = n
		}
		writeJSON(w, http.StatusOK, obs.EventsSinceTrace(c.Trace, since))
	case sub == "pause" && r.Method == http.MethodPost:
		c.Pause()
		writeJSON(w, http.StatusOK, c.Status())
	case sub == "resume" && r.Method == http.MethodPost:
		c.Resume()
		writeJSON(w, http.StatusOK, c.Status())
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// waitAll blocks until every currently submitted campaign finishes and
// returns the first error, if any (used by -wait mode and tests).
func (s *server) waitAll() error {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if _, err := s.get(id).Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
