package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the command under test into a temp dir and returns
// the binary path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// runTool runs the binary with args, returning stdout, stderr, and the
// exit error (nil on status 0).
func runTool(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run %s %v: %v", bin, args, err)
		}
	}
	return stdout.String(), stderr.String(), err
}

func TestSnowboardUsage(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/snowboard")
	stdout, stderr, _ := runTool(t, bin, "-h")
	if !strings.Contains(stderr, "-seed") || !strings.Contains(stderr, "-trials") {
		t.Fatalf("usage text missing flags:\n%s", stderr)
	}
	if stdout != "" {
		t.Fatalf("usage leaked to stdout:\n%s", stdout)
	}
}

// TestSnowboardJSONReport is the end-to-end smoke: a tiny full pipeline
// run must exit 0 and print exactly one machine-parseable JSON report on
// stdout (all chatter belongs on stderr).
func TestSnowboardJSONReport(t *testing.T) {
	bin := buildTool(t, "snowboard/cmd/snowboard")
	stdout, stderr, err := runTool(t, bin,
		"-seed", "1", "-fuzz", "30", "-corpus", "10", "-tests", "4", "-trials", "2",
		"-json", "-progress", "0")
	if err != nil {
		t.Fatalf("exit error: %v\nstderr:\n%s", err, stderr)
	}
	var report map[string]any
	if jerr := json.Unmarshal([]byte(stdout), &report); jerr != nil {
		t.Fatalf("stdout is not a single JSON document: %v\n%s", jerr, stdout)
	}
	for _, key := range []string{"CorpusSize", "DistinctPMCs", "TrialsRun"} {
		if _, ok := report[key]; !ok {
			t.Fatalf("report missing %q:\n%s", key, stdout)
		}
	}
}
