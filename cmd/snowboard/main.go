// Command snowboard runs the full testing pipeline — sequential fuzzing,
// profiling, PMC identification, clustering, and PMC-hinted concurrent
// exploration — against the simulated kernel, and prints a Table 3-style
// report.
//
// Usage:
//
//	snowboard [-mode full|compare] [-version 5.12-rc3] [-method S-INS-PAIR]
//	          [-seed 1] [-fuzz 400] [-corpus 120] [-tests 60] [-trials 16]
//	          [-feedback] [-rounds 4] [-workers 0] [-json] [-http :8080]
//	          [-progress 10s] [-trace spans.jsonl] [-events events.jsonl] [-v]
//
// With -mode compare (or the legacy -compare flag), every generation
// method of the paper's Table 3 runs on the same profiled corpus and one
// row is printed per method.
//
// Only the report is written to stdout (plain text, or JSON with -json);
// every progress and diagnostic line goes to stderr. With -http, a live
// introspection server exposes /metrics (Prometheus text), /progress
// (JSON), /debug/vars (expvar), and /debug/pprof/ for the duration of the
// run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"snowboard"
	"snowboard/internal/obs"
	"snowboard/internal/sched"
)

func main() {
	var (
		mode     = flag.String("mode", "full", "run mode: full (one method) or compare (all Table 3 methods)")
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version (5.3.10 or 5.12-rc3)")
		method   = flag.String("method", "S-INS-PAIR", "generation method (Table 1 strategy, 'Random S-INS-PAIR', 'Random pairing', 'Duplicate pairing')")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		fuzzN    = flag.Int("fuzz", 400, "sequential fuzzing executions")
		corpusN  = flag.Int("corpus", 120, "corpus size cap")
		tests    = flag.Int("tests", 60, "concurrent tests to execute")
		trials   = flag.Int("trials", 16, "interleaving trials per concurrent test")
		workers  = flag.Int("workers", 0, "parallel worker goroutines per stage (0 = one per CPU); results are identical for any value")
		feedback = flag.Bool("feedback", false, "close the loop: allocate the test budget in rounds across PMC clusters by recent interleaving-segment yield, composing independent PMCs and mutating segment-discovering schedules")
		rounds   = flag.Int("rounds", 0, "budget-allocation rounds for -feedback (0 = default 4)")
		stateDir = flag.String("state", "", "artifact store directory: persist every stage's output and resume from unchanged stages on re-run")
		compare  = flag.Bool("compare", false, "legacy alias for -mode compare")
		jsonOut  = flag.Bool("json", false, "emit the final report as JSON on stdout")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /progress, /debug/vars, /debug/pprof) on this address")
		progress = flag.Duration("progress", 10*time.Second, "interval between one-line progress reports on stderr (0 disables)")
		traceOut = flag.String("trace", "", "append JSONL span events to this file")
		events   = flag.String("events", "", "append flight-recorder events to this file as JSONL")
		verbose  = flag.Bool("v", false, "verbose per-issue output")
		reproDir = flag.String("repro-dir", "", "write reproduction bundles for crash-level findings here")
	)
	flag.Parse()
	diag := obs.Diag

	opts := snowboard.DefaultOptions()
	switch *version {
	case string(snowboard.V5_3_10):
		opts.Version = snowboard.V5_3_10
	case string(snowboard.V5_12_RC3):
		opts.Version = snowboard.V5_12_RC3
	default:
		fmt.Fprintf(os.Stderr, "snowboard: unknown kernel version %q\n", *version)
		os.Exit(2)
	}
	opts.Seed = *seed
	opts.FuzzBudget = *fuzzN
	opts.CorpusCap = *corpusN
	opts.TestBudget = *tests
	opts.Trials = *trials
	opts.Workers = *workers
	opts.StateDir = *stateDir
	opts.Feedback = *feedback
	opts.FeedbackRounds = *rounds

	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		obs.SetTraceSink(f)
		defer obs.SetTraceSink(nil)
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		obs.Events.SetSink(f)
		defer obs.Events.SetSink(nil)
	}
	stopSampler := obs.StartSampler(time.Second)
	defer stopSampler()
	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		diag.Printf("introspection listening on http://%s (/metrics /progress /events /coverage /campaign /debug/vars /debug/pprof)", srv.Addr())
	}
	stopProgress := obs.StartProgress(*progress, diag)
	defer stopProgress()

	if *compare || *mode == "compare" {
		runComparison(opts, *verbose, *jsonOut)
		return
	}
	if *mode != "full" {
		fmt.Fprintf(os.Stderr, "snowboard: unknown mode %q (full or compare)\n", *mode)
		os.Exit(2)
	}

	m, ok := snowboard.MethodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "snowboard: unknown method %q; known methods:\n", *method)
		for _, mm := range snowboard.Methods() {
			fmt.Fprintf(os.Stderr, "  %s\n", mm.Name)
		}
		os.Exit(2)
	}
	opts.Method = m

	report, err := snowboard.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		printJSON(report)
	} else {
		printReport(report, *verbose)
	}
	if *reproDir != "" {
		writeBundles(report, opts.Version, *reproDir)
	}
}

// jsonReport augments the registry-backed Report with its derived figures
// for machine consumers.
type jsonReport struct {
	*snowboard.Report
	BugIDs     []int   `json:"bug_ids"`
	Accuracy   float64 `json:"accuracy"`
	ExecPerMin float64 `json:"exec_per_min"`
}

func wrapJSON(r *snowboard.Report) jsonReport {
	return jsonReport{Report: r, BugIDs: r.BugIDs(), Accuracy: r.Accuracy(), ExecPerMin: r.ExecPerMin()}
}

func printJSON(r *snowboard.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(wrapJSON(r)); err != nil {
		fmt.Fprintf(os.Stderr, "snowboard: encoding report: %v\n", err)
		os.Exit(1)
	}
}

// writeBundles saves a reproduction bundle per crash-level finding that
// recorded a replayable trial.
func writeBundles(r *snowboard.Report, version snowboard.Version, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
		return
	}
	for id, rec := range r.Issues {
		if rec.Repro == nil {
			continue
		}
		b := &sched.ReproBundle{
			Version: version,
			Writer:  rec.Test.Writer,
			Reader:  rec.Test.Reader,
			Hint:    rec.Test.Hint,
			State:   rec.Repro,
			Finding: rec.Issue.Desc,
			BugID:   id,
		}
		path := filepath.Join(dir, fmt.Sprintf("issue-%02d.json", id))
		if err := sched.SaveBundle(path, b); err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: bundle for #%d: %v\n", id, err)
			continue
		}
		obs.Diag.Printf("repro bundle written: %s (replay with: sbrepro -bundle %s)", path, path)
	}
}

func printReport(r *snowboard.Report, verbose bool) {
	fmt.Printf("kernel %s, method %s\n", r.Version, r.Method)
	fmt.Printf("  corpus: %d tests (%d fuzz executions in %v), %d shared accesses profiled in %v\n",
		r.CorpusSize, r.FuzzExecutions, r.FuzzTime, r.ProfiledAccesses, r.ProfileTime)
	fmt.Printf("  PMCs: %d distinct keys / %d combinations identified in %v\n",
		r.DistinctPMCs, r.PMCCombinations, r.IdentifyTime)
	fmt.Printf("  clusters (exemplar PMCs): %d\n", r.ExemplarPMCs)
	fmt.Printf("  executed: %d concurrent tests (%d trials, %d switches) in %v (%.1f exec/min)\n",
		r.TestedTests, r.TrialsRun, r.Switches, r.ExecTime, r.ExecPerMin())
	fmt.Printf("  PMC accuracy: %d/%d = %.0f%% of hinted tests exercised their channel\n",
		r.Exercised, r.TestedPMCs, 100*r.Accuracy())
	fmt.Printf("  concurrency coverage: %d alias instruction pairs, %d interleaving segments\n",
		r.CoverPairs, r.CoverSegments)
	if r.FeedbackRounds > 0 {
		fmt.Printf("  feedback: %d rounds, %d composed tests\n", r.FeedbackRounds, r.ComposedTests)
	}
	ids := r.BugIDs()
	fmt.Printf("  issues found: %v\n", ids)
	minimized := 0
	for _, id := range ids {
		if r.Issues[id].Triage != nil {
			minimized++
		}
	}
	if minimized > 0 {
		fmt.Printf("  triage: %d finding(s) minimized into repro bundles (replay with: sbrepro -state <dir> -min <digest>)\n", minimized)
	}
	if verbose {
		printIssues(r)
	}
}

func printIssues(r *snowboard.Report) {
	ids := r.BugIDs()
	sort.Ints(ids)
	for _, id := range ids {
		rec := r.Issues[id]
		fmt.Printf("    #%-2d after %3d tests (trial %2d): [%s] %s\n",
			id, rec.TestIndex, rec.Trial, rec.Issue.Kind, rec.Issue.Desc)
		if t := rec.Triage; t != nil {
			st := t.Stats
			fmt.Printf("         minimized: %s  bundle %s\n", t.Signature, t.Bundle)
			fmt.Printf("         schedule %d->%d decisions, syscalls %d+%d -> %d+%d (%d replays)\n",
				st.DecisionsOrig, st.DecisionsMin,
				st.WriterCallsOrig, st.ReaderCallsOrig, st.WriterCallsMin, st.ReaderCallsMin,
				st.Replays)
		}
	}
	for _, u := range r.Unknown {
		fmt.Printf("    UNCLASSIFIED: [%s] %s\n", u.Kind, u.Desc)
	}
}

func runComparison(base snowboard.Options, verbose, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("Table 3 comparison, kernel %s, %d tests x %d trials per method\n\n",
			base.Version, base.TestBudget, base.Trials)
		fmt.Printf("%-20s %12s %10s %10s  %s\n", "Method", "Exemplars", "Tested", "Exercised", "Issues (test# found)")
	}
	var reports []jsonReport
	for _, m := range snowboard.Methods() {
		opts := base
		opts.Method = m
		r, err := snowboard.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: %s: %v\n", m.Name, err)
			continue
		}
		if jsonOut {
			reports = append(reports, wrapJSON(r))
			continue
		}
		fmt.Printf("%-20s %12d %10d %10d  %s\n", r.Method, r.ExemplarPMCs, r.TestedTests, r.Exercised, issueSummary(r))
		if verbose {
			printIssues(r)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: encoding reports: %v\n", err)
			os.Exit(1)
		}
	}
}

func issueSummary(r *snowboard.Report) string {
	ids := r.BugIDs()
	sort.Ints(ids)
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("#%d(%d)", id, r.Issues[id].TestIndex)
	}
	if s == "" {
		return "-"
	}
	return s
}
