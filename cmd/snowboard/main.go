// Command snowboard runs the full testing pipeline — sequential fuzzing,
// profiling, PMC identification, clustering, and PMC-hinted concurrent
// exploration — against the simulated kernel, and prints a Table 3-style
// report.
//
// Usage:
//
//	snowboard [-version 5.12-rc3] [-method S-INS-PAIR] [-seed 1]
//	          [-fuzz 400] [-corpus 120] [-tests 60] [-trials 16]
//	          [-compare] [-v]
//
// With -compare, every generation method of the paper's Table 3 runs on
// the same profiled corpus and one row is printed per method.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"snowboard"
	"snowboard/internal/sched"
)

func main() {
	var (
		version  = flag.String("version", string(snowboard.V5_12_RC3), "simulated kernel version (5.3.10 or 5.12-rc3)")
		method   = flag.String("method", "S-INS-PAIR", "generation method (Table 1 strategy, 'Random S-INS-PAIR', 'Random pairing', 'Duplicate pairing')")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		fuzzN    = flag.Int("fuzz", 400, "sequential fuzzing executions")
		corpusN  = flag.Int("corpus", 120, "corpus size cap")
		tests    = flag.Int("tests", 60, "concurrent tests to execute")
		trials   = flag.Int("trials", 16, "interleaving trials per concurrent test")
		compare  = flag.Bool("compare", false, "run every Table 3 method on one shared corpus")
		verbose  = flag.Bool("v", false, "verbose per-issue output")
		reproDir = flag.String("repro-dir", "", "write reproduction bundles for crash-level findings here")
	)
	flag.Parse()

	opts := snowboard.DefaultOptions()
	switch *version {
	case string(snowboard.V5_3_10):
		opts.Version = snowboard.V5_3_10
	case string(snowboard.V5_12_RC3):
		opts.Version = snowboard.V5_12_RC3
	default:
		fmt.Fprintf(os.Stderr, "snowboard: unknown kernel version %q\n", *version)
		os.Exit(2)
	}
	opts.Seed = *seed
	opts.FuzzBudget = *fuzzN
	opts.CorpusCap = *corpusN
	opts.TestBudget = *tests
	opts.Trials = *trials

	if *compare {
		runComparison(opts, *verbose)
		return
	}

	m, ok := snowboard.MethodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "snowboard: unknown method %q; known methods:\n", *method)
		for _, mm := range snowboard.Methods() {
			fmt.Fprintf(os.Stderr, "  %s\n", mm.Name)
		}
		os.Exit(2)
	}
	opts.Method = m

	report, err := snowboard.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
		os.Exit(1)
	}
	printReport(report, *verbose)
	if *reproDir != "" {
		writeBundles(report, opts.Version, *reproDir)
	}
}

// writeBundles saves a reproduction bundle per crash-level finding that
// recorded a replayable trial.
func writeBundles(r *snowboard.Report, version snowboard.Version, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "snowboard: %v\n", err)
		return
	}
	for id, rec := range r.Issues {
		if rec.Repro == nil {
			continue
		}
		b := &sched.ReproBundle{
			Version: version,
			Writer:  rec.Test.Writer,
			Reader:  rec.Test.Reader,
			Hint:    rec.Test.Hint,
			State:   rec.Repro,
			Finding: rec.Issue.Desc,
			BugID:   id,
		}
		path := filepath.Join(dir, fmt.Sprintf("issue-%02d.json", id))
		if err := sched.SaveBundle(path, b); err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: bundle for #%d: %v\n", id, err)
			continue
		}
		fmt.Printf("  repro bundle written: %s (replay with: sbrepro -bundle %s)\n", path, path)
	}
}

func printReport(r *snowboard.Report, verbose bool) {
	fmt.Printf("kernel %s, method %s\n", r.Version, r.Method)
	fmt.Printf("  corpus: %d tests (%d fuzz executions), %d shared accesses profiled in %v\n",
		r.CorpusSize, r.FuzzExecutions, r.ProfiledAccesses, r.ProfileTime)
	fmt.Printf("  PMCs: %d distinct keys / %d combinations identified in %v\n",
		r.DistinctPMCs, r.PMCCombinations, r.IdentifyTime)
	fmt.Printf("  clusters (exemplar PMCs): %d\n", r.ExemplarPMCs)
	fmt.Printf("  executed: %d concurrent tests (%d trials, %d switches) in %v\n",
		r.TestedTests, r.TrialsRun, r.Switches, r.ExecTime)
	fmt.Printf("  PMC accuracy: %d/%d = %.0f%% of hinted tests exercised their channel\n",
		r.Exercised, r.TestedPMCs, 100*r.Accuracy())
	fmt.Printf("  concurrency coverage: %d alias instruction pairs\n", r.CoverPairs)
	ids := r.BugIDs()
	fmt.Printf("  issues found: %v\n", ids)
	if verbose {
		printIssues(r)
	}
}

func printIssues(r *snowboard.Report) {
	ids := r.BugIDs()
	sort.Ints(ids)
	for _, id := range ids {
		rec := r.Issues[id]
		fmt.Printf("    #%-2d after %3d tests (trial %2d): [%s] %s\n",
			id, rec.TestIndex, rec.Trial, rec.Issue.Kind, rec.Issue.Desc)
	}
	for _, u := range r.Unknown {
		fmt.Printf("    UNCLASSIFIED: [%s] %s\n", u.Kind, u.Desc)
	}
}

func runComparison(base snowboard.Options, verbose bool) {
	fmt.Printf("Table 3 comparison, kernel %s, %d tests x %d trials per method\n\n",
		base.Version, base.TestBudget, base.Trials)
	fmt.Printf("%-20s %12s %10s %10s  %s\n", "Method", "Exemplars", "Tested", "Exercised", "Issues (test# found)")
	for _, m := range snowboard.Methods() {
		opts := base
		opts.Method = m
		r, err := snowboard.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snowboard: %s: %v\n", m.Name, err)
			continue
		}
		fmt.Printf("%-20s %12d %10d %10d  %s\n", r.Method, r.ExemplarPMCs, r.TestedTests, r.Exercised, issueSummary(r))
		if verbose {
			printIssues(r)
		}
	}
}

func issueSummary(r *snowboard.Report) string {
	ids := r.BugIDs()
	sort.Ints(ids)
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("#%d(%d)", id, r.Issues[id].TestIndex)
	}
	if s == "" {
		return "-"
	}
	return s
}
