// Package snowboard is a from-scratch Go reproduction of "Snowboard:
// Finding Kernel Concurrency Bugs through Systematic Inter-thread
// Communication Analysis" (SOSP 2021).
//
// Snowboard finds kernel concurrency bugs by jointly exploring test inputs
// and thread interleavings: it profiles the memory accesses of sequential
// tests run from a fixed kernel snapshot, pairs write/read accesses that
// overlap with differing values into potential memory communications
// (PMCs), clusters and prioritizes those PMCs uncommon-first, and executes
// the chosen test pairs concurrently with the PMC as a scheduling hint.
//
// Because the paper's substrate (a customized QEMU/SKI hypervisor running
// Linux) is not reproducible as a pure Go library, this package ships its
// own deterministic substrate: a coroutine virtual machine with full
// memory-access interposition and a miniature kernel — twelve subsystems
// in simulated guest memory carrying the seventeen concurrency issues of
// the paper's Table 2. See DESIGN.md for the substitution rationale and
// the per-experiment index.
//
// # Quick start
//
//	opts := snowboard.DefaultOptions()
//	report, err := snowboard.Run(opts)
//	if err != nil { ... }
//	fmt.Println(report)          // a Table 3-style row
//	fmt.Println(report.BugIDs()) // Table 2 issue numbers found
//
// For finer control, build a Pipeline and run the four stages separately,
// or construct Prog values by hand and drive an Explorer directly — see
// the examples/ directory.
package snowboard

import (
	"snowboard/internal/cluster"
	"snowboard/internal/core"
	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/diagnose"
	"snowboard/internal/exec"
	"snowboard/internal/fuzz"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/trace"
	"snowboard/internal/triage"
	"snowboard/internal/vm"
)

// Version identifies the simulated kernel build under test.
type Version = kernel.Version

// Simulated kernel versions under test (§5.1 of the paper).
const (
	V5_3_10   = kernel.V5_3_10
	V5_12_RC3 = kernel.V5_12_RC3
)

// Pipeline configuration and reporting.
type (
	// Options configures a full pipeline run.
	Options = core.Options
	// Report is the outcome of a run: a Table 3-style row plus accuracy
	// counters and stage timings.
	Report = core.Report
	// Method is one concurrent-test generation method (a Table 3 row):
	// one of the eight Table 1 clustering strategies, Random S-INS-PAIR,
	// Random pairing, or Duplicate pairing.
	Method = core.Method
	// Pipeline exposes the four stages individually.
	Pipeline = core.Pipeline
	// IssueRecord tracks when an issue was first found.
	IssueRecord = core.IssueRecord
)

// Test representation.
type (
	// Prog is a sequential test: an ordered list of system calls with
	// syzkaller-style resource threading.
	Prog = corpus.Prog
	// Call is one system call of a Prog.
	Call = corpus.Call
	// Arg is one syscall argument.
	Arg = corpus.Arg
	// Corpus is a deduplicated collection of sequential tests.
	Corpus = corpus.Corpus
)

// PMC analysis.
type (
	// PMC is a potential memory communication (§2.2).
	PMC = pmc.PMC
	// PMCKey is one side of a PMC: instruction, range, value.
	PMCKey = pmc.Key
	// PMCSet is the identified PMC database.
	PMCSet = pmc.Set
	// Profile is the shared-access set of one sequential test.
	Profile = pmc.Profile
	// Strategy is a Table 1 clustering strategy.
	Strategy = cluster.Strategy
	// Cluster is one group of equivalent PMCs.
	Cluster = cluster.Cluster
)

// Execution and detection.
type (
	// Env is a booted simulated kernel plus its boot snapshot.
	Env = exec.Env
	// Result summarizes one execution.
	Result = exec.Result
	// Explorer executes concurrent tests per Algorithm 2.
	Explorer = sched.Explorer
	// ConcurrentTest is two sequential tests plus a PMC scheduling hint.
	ConcurrentTest = sched.ConcurrentTest
	// ExploreOutcome summarizes the exploration of one concurrent test.
	ExploreOutcome = sched.Outcome
	// Issue is one bug-oracle finding.
	Issue = detect.Issue
	// KnownBug is a row of the paper's Table 2.
	KnownBug = detect.KnownBug
	// Trace is an ordered memory-access trace.
	Trace = trace.Trace
	// Access is one memory access record.
	Access = trace.Access
	// Scheduler decides which simulated thread runs next.
	Scheduler = vm.Scheduler
)

// Higher-dimension testing (§6 extension) and reproduction.
type (
	// Triple is a write+2-read PMC for three-thread tests.
	Triple = pmc.Triple
	// TripleEntry aggregates a triple's concrete test combinations.
	TripleEntry = pmc.TripleEntry
	// TripleTest is a three-thread concurrent test.
	TripleTest = sched.TripleTest
	// ReproState pins one bug-exposing trial for deterministic replay.
	ReproState = sched.ReproState
)

// Distributed execution. Delivery is at-least-once: workers lease jobs,
// ack on success, nack on failure; expired leases redeliver, exhausted
// attempts dead-letter, and coordinators fold results exactly once.
type (
	// Queue is the lightweight distributed test queue.
	Queue = queue.Queue
	// QueueOptions configure a queue's lease timeout, retry budget, and
	// metrics name.
	QueueOptions = queue.Options
	// Job is one queued concurrent test.
	Job = queue.Job
	// JobLease is one granted delivery of a job: the job plus the handle
	// used to Ack/Nack/Extend it.
	JobLease = queue.Lease
	// DeadJob is a job that exhausted its delivery attempts.
	DeadJob = queue.DeadJob
	// JobResult carries a worker's findings back.
	JobResult = queue.JobResult
	// DistSummary is the exactly-once fold of a distributed campaign's
	// worker results plus its dead-letter list.
	DistSummary = core.DistSummary
)

// NewQueueWithOptions returns an empty job queue with explicit delivery
// options (lease timeout, max delivery attempts).
func NewQueueWithOptions(o QueueOptions) *Queue { return queue.NewWithOptions(o) }

// AggregateResults folds distributed worker results into a deterministic
// summary, counting each job exactly once no matter how often at-least-once
// delivery redelivered it.
func AggregateResults(expected int, results []JobResult, dead []DeadJob) DistSummary {
	return core.AggregateResults(expected, results, dead)
}

// Checkpoint & resume: the content-addressed artifact store every stage
// memoizes through when Options.StateDir is set (or a store is attached
// with Pipeline.UseStore).
type (
	// Store is an on-disk, versioned, checksummed artifact store holding
	// corpus, profile-set, PMC-set, and report artifacts addressed by the
	// SHA-256 of their canonical encoding.
	Store = store.Store
	// Digest is a content address: the SHA-256 of an artifact's payload.
	Digest = store.Digest
)

// Artifact kinds stored by the pipeline.
const (
	KindCorpus   = store.KindCorpus
	KindProfiles = store.KindProfiles
	KindPMCs     = store.KindPMCs
	KindReport   = store.KindReport
	KindSeries   = store.KindSeries
	KindRepro    = store.KindRepro
	KindCampaign = store.KindCampaign
)

// OpenStore opens (creating if needed) an artifact store rooted at dir.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// ParseDigest parses the 64-hex-digit form of a content digest.
func ParseDigest(s string) (Digest, error) { return store.ParseDigest(s) }

// Observability (internal/obs): the process-wide metrics registry every
// pipeline stage reports into, plus the live introspection server.
type (
	// ObsSnapshot is a point-in-time view of the metrics registry
	// (counters, gauges, log-scale histograms).
	ObsSnapshot = obs.Snapshot
	// ObsProgress is the live campaign summary served at /progress.
	ObsProgress = obs.Progress
	// ObsServer is a running introspection HTTP server.
	ObsServer = obs.Server
	// ObsEvent is one flight-recorder entry (served at /events).
	ObsEvent = obs.Event
	// ObsSample is one point of the campaign coverage time-series.
	ObsSample = obs.Sample
	// ObsCampaign identifies one logical testing campaign (its trace ID).
	ObsCampaign = obs.Campaign
)

// Triage (internal/triage): post-detection schedule/test minimization,
// fleet-scale crash-signature dedup, and canonical SBRB repro bundles.
type (
	// TriageSignature is the stable crash-site + communication-channel
	// identity findings dedup on, across trials and campaigns.
	TriageSignature = triage.Signature
	// TriageBundle is the canonical SBRB repro artifact replayed by
	// `sbrepro -state <dir> -min <digest>`.
	TriageBundle = triage.Bundle
	// TriageStats records minimization effort and effect.
	TriageStats = triage.Stats
	// TriageSummary is the per-finding triage record attached to
	// crash-level IssueRecords in a Report.
	TriageSummary = core.TriageSummary
	// TriageFinding is one crash-level finding to minimize.
	TriageFinding = triage.Finding
	// TriageOptions tunes minimization.
	TriageOptions = triage.Options
	// TriageResult is a minimized finding plus its signature and stats.
	TriageResult = triage.Result
)

// MinimizeFinding delta-debugs one crash-level finding: it shrinks the
// yield schedule and both test programs while re-replaying each candidate,
// keeping a change only if the same crash signature recurs.
func MinimizeFinding(env *Env, f TriageFinding, opt TriageOptions) (*TriageResult, error) {
	return triage.Minimize(env, f, opt)
}

// DecodeReproBundle parses a canonical SBRB repro bundle, distinguishing
// stale (format-version mismatch) from corrupt input.
func DecodeReproBundle(data []byte) (*TriageBundle, error) { return triage.Decode(data) }

// SnapshotMetrics freezes the process-wide metrics registry: every
// counter, gauge, and stage-duration histogram the pipeline has bumped so
// far. Subtract two snapshots (Snapshot.Sub) to scope the registry to one
// run.
func SnapshotMetrics() ObsSnapshot { return obs.Default.Snapshot() }

// ObsProgressNow derives the live campaign progress summary (corpus size,
// PMCs, tests executed/exercised, issues found, exec/min) from the
// registry.
func ObsProgressNow() ObsProgress { return obs.ProgressNow() }

// StartObsServer serves live introspection on addr: /metrics (Prometheus
// text), /progress (JSON), /events (flight recorder), /coverage (campaign
// time-series), /campaign, /debug/vars (expvar), and /debug/pprof/.
func StartObsServer(addr string) (*ObsServer, error) { return obs.StartHTTP(addr) }

// EventsSince returns the flight recorder's retained events with sequence
// numbers strictly greater than n, ascending — the /events?since=N page.
func EventsSince(n uint64) []ObsEvent { return obs.Events.Since(n) }

// CoverageSeries returns a copy of the campaign coverage time-series
// accumulated so far (and persisted as an SBTS artifact with -state).
func CoverageSeries() []ObsSample { return obs.DefaultSeries.Samples() }

// CurrentCampaign returns the process-wide campaign identity, or nil before
// any pipeline started one.
func CurrentCampaign() *ObsCampaign { return obs.CurrentCampaign() }

// Campaign control plane (cmd/sbd): long-lived multi-tenant campaign
// hosting. Each campaign is identified by the digest of its canonical
// manifest (idempotent submission), shards its concurrent tests across a
// named per-campaign queue, persists through the artifact store for
// byte-identical restart resume, and shares execution fairly with every
// other live campaign through a FIFO turn scheduler.
type (
	// CampaignSpec is the JSON campaign submission: kernel version, seed,
	// budgets, and generation method.
	CampaignSpec = core.CampaignSpec
	// Campaign is one running (or finished) campaign handle.
	Campaign = core.Campaign
	// CampaignEnv is the shared infrastructure campaigns run in: state
	// dir, queue registry, wire address, and fair scheduler.
	CampaignEnv = core.CampaignEnv
	// CampaignStatus is a live point-in-time campaign summary (the
	// GET /campaigns element).
	CampaignStatus = core.CampaignStatus
	// TurnScheduler grants execution turns FIFO across campaigns.
	TurnScheduler = core.TurnScheduler
	// QueueRegistry serves many named job queues on one TCP listener.
	QueueRegistry = queue.Registry
)

// StartCampaign validates, persists, and launches a campaign in env.
func StartCampaign(spec CampaignSpec, env CampaignEnv) (*Campaign, error) {
	return core.StartCampaign(spec, env)
}

// LoadCampaignSpecs enumerates every campaign manifest persisted under
// stateDir — the restart-resume inventory.
func LoadCampaignSpecs(stateDir string) ([]CampaignSpec, error) {
	return core.LoadCampaignSpecs(stateDir)
}

// NewTurnScheduler returns a FIFO fair scheduler allowing slots campaigns
// to execute concurrently.
func NewTurnScheduler(slots int) *TurnScheduler { return core.NewTurnScheduler(slots) }

// NewQueueRegistry returns a registry that mints named queues on demand,
// each cloning the template options.
func NewQueueRegistry(template QueueOptions) *QueueRegistry { return queue.NewRegistry(template) }

// Exploration modes for the Explorer.
const (
	ModeSnowboard  = sched.ModeSnowboard
	ModeSKI        = sched.ModeSKI
	ModeRandomWalk = sched.ModeRandomWalk
	ModePCT        = sched.ModePCT
)

// Run executes the full four-stage pipeline.
func Run(opts Options) (*Report, error) { return core.Run(opts) }

// DefaultOptions returns a laptop-scale configuration using S-INS-PAIR,
// the strategy the paper's exhaustive study found most effective.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewPipeline boots a simulated kernel and prepares stage-by-stage runs.
func NewPipeline(opts Options) *Pipeline { return core.NewPipeline(opts) }

// Methods lists the eleven generation methods of the paper's Table 3.
func Methods() []Method { return core.Methods() }

// MethodByName resolves a generation method ("S-INS-PAIR", "Random
// pairing", …).
func MethodByName(name string) (Method, bool) { return core.MethodByName(name) }

// Strategies lists the eight Table 1 clustering strategies.
func Strategies() []Strategy { return cluster.Strategies }

// NewEnv boots a fresh simulated kernel of the given version and takes the
// fixed snapshot all tests start from.
func NewEnv(version kernel.Version) *Env {
	return exec.NewEnv(kernel.Config{Version: version})
}

// Identify runs Algorithm 1 (PMC identification) over sequential test
// profiles.
func Identify(profiles []Profile) *PMCSet {
	return pmc.Identify(profiles, pmc.DefaultOptions())
}

// FuzzCorpus runs a coverage-guided sequential fuzzing campaign on env and
// returns the selected corpus (the Syzkaller stand-in, §4.1.1).
func FuzzCorpus(env *Env, seed int64, budget, maxKeep int) *Corpus {
	return fuzz.Campaign(env, seed, budget, maxKeep).Corpus
}

// Table2 returns the catalogue of known issues carried by the simulated
// kernel, mirroring the paper's Table 2.
func Table2() []KnownBug { return detect.Table2 }

// Const builds a literal syscall argument.
func Const(v uint64) Arg { return corpus.Const(v) }

// Result builds a resource-reference argument (r0, r1, … of earlier calls).
func ResultArg(ref int) Arg { return corpus.Result(ref) }

// NewQueue returns an empty in-process job queue; see queue.Serve/Dial for
// the TCP transport used to fan exploration out across workers.
func NewQueue() *Queue { return queue.New() }

// IdentifyTriples derives write+2-read PMC triples for three-thread tests
// (the §6 extension). maxTriples caps the output; 0 means unlimited.
func IdentifyTriples(set *PMCSet, maxTriples int) []TripleEntry {
	return pmc.IdentifyTriples(set, maxTriples)
}

// Replay deterministically re-executes a bug-exposing trial recorded in an
// exploration outcome's Repro state (§6 "Deterministic Reproduction").
func Replay(env *Env, ct ConcurrentTest, st *ReproState, tr *Trace) Result {
	return sched.Replay(env, ct, st, tr)
}

// Diagnose renders the two-column interleaving report around the PMC for a
// bug-exposing trial (§6 "Bug Diagnosis"), in the style of the paper's
// Figure 1.
func Diagnose(tr *Trace, hint *PMC, issues []Issue) string {
	return diagnose.Render(tr, hint, issues, diagnose.DefaultOptions())
}
